// Bit-for-bit determinism of the parallel compute layer across thread
// counts (the tentpole contract of the intra-op thread pool).
//
// Every parallel loop in src/kernels, src/tensor and src/model partitions
// only iteration spaces whose per-index floating-point reduction order is
// independent of chunk boundaries (one (query token, head) pair, one output
// row, one element). These tests run the same inputs at threads ∈ {1, 2, 8}
// and require byte-identical outputs — not approximately equal: identical.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <functional>
#include <iterator>
#include <numeric>
#include <utility>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/kernels/attention.h"
#include "src/kvcache/kv_pool.h"
#include "src/model/transformer.h"
#include "src/tensor/ops.h"
#include "src/tensor/packed_matrix.h"

namespace pensieve {
namespace {

constexpr int kThreadCounts[] = {1, 2, 8};

class ThreadDeterminismTest : public ::testing::Test {
 protected:
  // Every test restores the default pool so suites sharing the binary are
  // unaffected.
  void TearDown() override { ThreadPool::SetGlobalThreads(0); }
};

bool BytesEqual(const Tensor& a, const Tensor& b) {
  return a.numel() == b.numel() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.numel()) * sizeof(float)) == 0;
}

// Runs fn once per thread count and checks all outputs equal the first.
void ExpectIdenticalAcrossThreadCounts(
    const std::function<Tensor()>& fn, const char* label) {
  ThreadPool::SetGlobalThreads(kThreadCounts[0]);
  const Tensor reference = fn();
  for (size_t i = 1; i < std::size(kThreadCounts); ++i) {
    ThreadPool::SetGlobalThreads(kThreadCounts[i]);
    const Tensor got = fn();
    EXPECT_TRUE(BytesEqual(reference, got))
        << label << ": output at " << kThreadCounts[i]
        << " threads differs from single-threaded run";
  }
}

// Ragged multi-request attention workload over shuffled (non-contiguous)
// block tables, with GQA (4 query heads, 2 KV heads) and a head_dim that
// exercises the unrolled Dot's tail (10 = 2*4 + 2).
struct AttentionWorkload {
  static constexpr int64_t kNumHeads = 4;
  static constexpr int64_t kNumKvHeads = 2;
  static constexpr int64_t kHeadDim = 10;
  static constexpr int64_t kBlockSize = 8;

  AttentionWorkload()
      : pool(64, kBlockSize, /*num_layers=*/1, kNumKvHeads, kHeadDim) {
    const std::vector<std::pair<int64_t, int64_t>> shapes = {
        // (query_len, context_len): decode, short prefill, long ragged mixes.
        {1, 33}, {5, 5}, {7, 41}, {1, 17}, {12, 29}};
    tables.reserve(shapes.size());  // subs hold pointers into tables
    int64_t next_block = 0;
    int64_t query_rows = 0;
    for (const auto& [query_len, context_len] : shapes) {
      query_rows += query_len;
    }
    query = Tensor({query_rows, kNumHeads, kHeadDim});
    out = Tensor({query_rows, kNumHeads, kHeadDim});
    FillNormal(query, 91, 1.0f);
    int64_t row = 0;
    for (const auto& [query_len, context_len] : shapes) {
      const int64_t blocks = (context_len + kBlockSize - 1) / kBlockSize;
      tables.emplace_back();
      std::vector<BlockId>& table = tables.back();
      for (int64_t b = 0; b < blocks; ++b) {
        table.push_back(static_cast<BlockId>(next_block++));
      }
      // Reverse so the context is non-contiguous in pool order.
      std::reverse(table.begin(), table.end());
      for (int64_t pos = 0; pos < context_len; ++pos) {
        Tensor k({kNumKvHeads, kHeadDim});
        Tensor v({kNumKvHeads, kHeadDim});
        FillNormal(k, static_cast<uint64_t>(next_block * 1000 + pos * 2 + 1), 1.0f);
        FillNormal(v, static_cast<uint64_t>(next_block * 1000 + pos * 2 + 2), 1.0f);
        pool.WriteToken(table[static_cast<size_t>(pos / kBlockSize)], 0,
                        pos % kBlockSize, k.data(), v.data());
      }
      subs.push_back({row, query_len, context_len, &table});
      row += query_len;
    }
  }

  KvPool pool;
  Tensor query;
  Tensor out;
  std::vector<std::vector<BlockId>> tables;
  std::vector<AttentionSubRequest> subs;
};

TEST_F(ThreadDeterminismTest, MultiTokenPagedAttention) {
  AttentionWorkload w;
  ExpectIdenticalAcrossThreadCounts(
      [&] {
        MultiTokenPagedAttention(w.pool, 0, w.query, w.subs, 0.3f, &w.out);
        return w.out;
      },
      "MultiTokenPagedAttention");
}

TEST_F(ThreadDeterminismTest, CopyOutPagedAttention) {
  AttentionWorkload w;
  ExpectIdenticalAcrossThreadCounts(
      [&] {
        CopyOutPagedAttention(w.pool, 0, w.query, w.subs, 0.3f, &w.out);
        return w.out;
      },
      "CopyOutPagedAttention");
}

TEST_F(ThreadDeterminismTest, MultiRoundPagedAttention) {
  AttentionWorkload w;
  ExpectIdenticalAcrossThreadCounts(
      [&] {
        MultiRoundPagedAttention(w.pool, 0, w.query, w.subs, 0.3f, &w.out);
        return w.out;
      },
      "MultiRoundPagedAttention");
}

TEST_F(ThreadDeterminismTest, NaiveMaskedAttention) {
  AttentionWorkload w;
  ExpectIdenticalAcrossThreadCounts(
      [&] {
        NaiveMaskedAttention(w.pool, 0, w.query, w.subs, 0.3f, &w.out);
        return w.out;
      },
      "NaiveMaskedAttention");
}

TEST_F(ThreadDeterminismTest, ContiguousAttention) {
  const int64_t num_heads = 4, num_kv_heads = 2, head_dim = 10;
  Tensor query({9, num_heads, head_dim});
  Tensor out({9, num_heads, head_dim});
  FillNormal(query, 7, 1.0f);
  Tensor keys1({21, num_kv_heads, head_dim}), values1({21, num_kv_heads, head_dim});
  Tensor keys2({6, num_kv_heads, head_dim}), values2({6, num_kv_heads, head_dim});
  FillNormal(keys1, 8, 1.0f);
  FillNormal(values1, 9, 1.0f);
  FillNormal(keys2, 10, 1.0f);
  FillNormal(values2, 11, 1.0f);
  const std::vector<ContiguousAttentionRequest> reqs = {
      {0, 4, &keys1, &values1}, {4, 5, &keys2, &values2}};
  ExpectIdenticalAcrossThreadCounts(
      [&] {
        ContiguousAttention(query, reqs, 0.3f, &out);
        return out;
      },
      "ContiguousAttention");
}

TEST_F(ThreadDeterminismTest, DenseOps) {
  Tensor a({37, 53});
  Tensor b({53, 29});
  Tensor bt({29, 53});
  Tensor gain({53}), bias({53});
  FillNormal(a, 1, 1.0f);
  FillNormal(b, 2, 1.0f);
  FillNormal(bt, 3, 1.0f);
  FillNormal(gain, 4, 1.0f);
  FillNormal(bias, 5, 1.0f);
  ExpectIdenticalAcrossThreadCounts([&] { return MatMul(a, b); }, "MatMul");
  ExpectIdenticalAcrossThreadCounts([&] { return MatMulTransposedB(a, bt); },
                                    "MatMulTransposedB");
  // m <= 8 takes MatMulTransposedB's column-partitioned decode path.
  Tensor a1({1, 53});
  FillNormal(a1, 12, 1.0f);
  ExpectIdenticalAcrossThreadCounts([&] { return MatMulTransposedB(a1, bt); },
                                    "MatMulTransposedB(m=1)");
  ExpectIdenticalAcrossThreadCounts([&] { return LayerNorm(a, gain, bias, 1e-5f); },
                                    "LayerNorm");
  ExpectIdenticalAcrossThreadCounts([&] { return RmsNorm(a, gain, 1e-5f); },
                                    "RmsNorm");
  ExpectIdenticalAcrossThreadCounts(
      [&] {
        Tensor x = a;
        SoftmaxRowsInPlace(x);
        return x;
      },
      "SoftmaxRowsInPlace");
  ExpectIdenticalAcrossThreadCounts(
      [&] {
        Tensor x = a;
        SiluInPlace(x);
        AddBiasInPlace(x, gain);
        return x;
      },
      "SiluInPlace+AddBiasInPlace");
  std::vector<int64_t> positions(37);
  std::iota(positions.begin(), positions.end(), 3);
  ExpectIdenticalAcrossThreadCounts(
      [&] {
        Tensor x({37, 2, 10});
        FillNormal(x, 6, 1.0f);
        ApplyRotaryInPlace(x, positions, 10000.0f);
        return x;
      },
      "ApplyRotaryInPlace");
}

// The packed GEMM's two partitioning strategies — row-blocks for large m,
// output panels for the decode GEMV path — must both be bit-stable across
// thread counts, and bit-identical to each other for the same row. Shapes
// straddle the kKC = 512 cache block and leave remainder tiles on both axes.
TEST_F(ThreadDeterminismTest, PackedGemm) {
  Tensor w({130, 515});
  FillNormal(w, 21, 1.0f);
  const PackedMatrix packed(w);
  Tensor big({37, 515});
  FillNormal(big, 22, 1.0f);
  ExpectIdenticalAcrossThreadCounts([&] { return MatMulPacked(big, packed); },
                                    "MatMulPacked(row path)");
  Tensor one({1, 515});
  FillNormal(one, 23, 1.0f);
  ExpectIdenticalAcrossThreadCounts([&] { return MatMulPacked(one, packed); },
                                    "MatMulPacked(GEMV path)");
  // Cross-path: a single row computed by the GEMV path must equal the same
  // row inside a batch computed by the row path, at every thread count.
  for (int threads : kThreadCounts) {
    ThreadPool::SetGlobalThreads(threads);
    const Tensor batch = MatMulPacked(big, packed);
    const Tensor row = MatMulPacked(big.SliceRows(7, 8), packed);
    EXPECT_EQ(0, std::memcmp(batch.data() + 7 * w.dim(0), row.data(),
                             static_cast<size_t>(w.dim(0)) * sizeof(float)))
        << "GEMV path diverges from row path at " << threads << " threads";
  }
}

// A workspace-backed ForwardInto (the allocation-free serving path) must be
// as thread-stable as the allocating wrapper, including when the same model
// instance's arena is reused across runs.
TEST_F(ThreadDeterminismTest, WorkspaceForwardInto) {
  ModelConfig config;
  config.name = "tiny";
  config.num_layers = 2;
  config.hidden_size = 24;
  config.num_heads = 4;
  config.num_kv_heads = 2;
  config.head_dim = 6;
  config.ffn_hidden = 48;
  config.vocab_size = 50;
  config.activation = Activation::kSilu;
  config.norm = NormKind::kRmsNorm;
  config.pos_embedding = PositionEmbedding::kRotary;
  config.gated_ffn = true;
  config.qkv_bias = false;
  const Transformer model(config, /*seed=*/321);
  Tensor logits;
  ExpectIdenticalAcrossThreadCounts(
      [&] {
        KvPool pool(8, /*block_size=*/4, config.num_layers, config.num_kv_heads,
                    config.head_dim);
        const std::vector<BlockId> table = {0, 1};
        ForwardBatch batch;
        for (int64_t t = 0; t < 5; ++t) {
          batch.tokens.push_back(static_cast<int32_t>(t + 1));
          batch.positions.push_back(t);
          batch.kv_slots.push_back({table[static_cast<size_t>(t / 4)], t % 4});
        }
        batch.subs.push_back({0, 5, 5, &table});
        batch.logit_rows = {4};
        model.ForwardInto(&pool, batch, &logits);
        return logits;
      },
      "Transformer::ForwardInto");
}

// End-to-end: a full transformer forward (mixed prefill + decode batch,
// rotary + RMSNorm + gated FFN to cover the Llama-style ops) must produce
// byte-identical logits and KV cache for every thread count.
TEST_F(ThreadDeterminismTest, TransformerForward) {
  ModelConfig config;
  config.name = "tiny";
  config.num_layers = 2;
  config.hidden_size = 24;
  config.num_heads = 4;
  config.num_kv_heads = 2;
  config.head_dim = 6;
  config.ffn_hidden = 48;
  config.vocab_size = 50;
  config.activation = Activation::kSilu;
  config.norm = NormKind::kRmsNorm;
  config.pos_embedding = PositionEmbedding::kRotary;
  config.gated_ffn = true;
  config.qkv_bias = false;
  const Transformer model(config, /*seed=*/123);

  auto run = [&] {
    KvPool pool(8, /*block_size=*/4, config.num_layers, config.num_kv_heads,
                config.head_dim);
    ForwardBatch batch;
    // Request A: 6-token prefill; request B: single decode token with a
    // 3-token history already in the cache.
    const std::vector<BlockId> table_a = {0, 1};
    const std::vector<BlockId> table_b = {2};
    for (int64_t t = 0; t < 6; ++t) {
      batch.tokens.push_back(static_cast<int32_t>(t + 1));
      batch.positions.push_back(t);
      batch.kv_slots.push_back({table_a[static_cast<size_t>(t / 4)], t % 4});
    }
    for (int64_t l = 0; l < config.num_layers; ++l) {
      for (int64_t pos = 0; pos < 3; ++pos) {
        Tensor k({config.num_kv_heads, config.head_dim});
        Tensor v({config.num_kv_heads, config.head_dim});
        FillNormal(k, static_cast<uint64_t>(l * 100 + pos * 2 + 40), 1.0f);
        FillNormal(v, static_cast<uint64_t>(l * 100 + pos * 2 + 41), 1.0f);
        pool.WriteToken(table_b[0], l, pos, k.data(), v.data());
      }
    }
    batch.tokens.push_back(7);
    batch.positions.push_back(3);
    batch.kv_slots.push_back({table_b[0], 3});
    batch.subs.push_back({0, 6, 6, &table_a});
    batch.subs.push_back({6, 1, 4, &table_b});
    batch.logit_rows = {5, 6};
    return model.Forward(&pool, batch);
  };
  ExpectIdenticalAcrossThreadCounts(run, "Transformer::Forward");
}

}  // namespace
}  // namespace pensieve

// Tests for eviction policies, the cost estimator, and the cache coordinator.

#include <gtest/gtest.h>

#include "src/eviction/cost_estimator.h"
#include "src/eviction/policy.h"
#include "src/model/model_config.h"
#include "src/scheduler/cache_coordinator.h"
#include "src/sim/hardware.h"

namespace pensieve {
namespace {

GpuCostModel Opt13BModel() {
  return GpuCostModel(Opt13BConfig(), A100Spec(1));
}

ChunkCostEstimator Estimator() {
  return ChunkCostEstimator::ProfileFromCostModel(Opt13BModel(), 32, 16384);
}

// --- ChunkCostEstimator --------------------------------------------------------

TEST(CostEstimatorTest, MonotoneInContext) {
  ChunkCostEstimator est = Estimator();
  double prev = 0.0;
  for (int64_t ctx = 32; ctx <= 16384; ctx += 500) {
    const double c = est.Cost(ctx);
    EXPECT_GT(c, prev) << "ctx=" << ctx;
    prev = c;
  }
}

TEST(CostEstimatorTest, InterpolationCloseToModelBetweenKnots) {
  GpuCostModel model = Opt13BModel();
  ChunkCostEstimator est = ChunkCostEstimator::ProfileFromCostModel(model, 32, 16384);
  // 3000 is between the 2048 and 4096 knots; linear interpolation of a
  // linear-ish cost should land within a few percent of the true model.
  const double truth = model.ChunkRecomputeCost(32, 3000);
  EXPECT_NEAR(est.Cost(3000), truth, truth * 0.1);
}

TEST(CostEstimatorTest, ProfileFromKernelsIsMonotone) {
  // Wall-clock profiling of the real CPU kernel: later contexts must cost
  // more (allow generous tolerance — it is a timing measurement).
  ChunkCostEstimator est =
      ChunkCostEstimator::ProfileFromKernels(TinyOptConfig(), 16, 256);
  EXPECT_GT(est.Cost(256), est.Cost(16));
}

// --- Policies -------------------------------------------------------------------

ChunkCandidate MakeCandidate(int64_t conv, int64_t chunk, int64_t ctx,
                             double last_active) {
  ChunkCandidate c;
  c.conversation_id = conv;
  c.chunk_index = chunk;
  c.context_len = ctx;
  c.last_active = last_active;
  return c;
}

TEST(PolicyTest, RetentionValuePrefersLeadingChunks) {
  // Same conversation: leading chunks (smaller context) are cheaper to
  // recompute, so they must score lower (evicted first).
  RetentionValuePolicy policy(Estimator());
  const double now = 100.0;
  const double lead = policy.Score(MakeCandidate(1, 0, 32, 50.0), now);
  const double trail = policy.Score(MakeCandidate(1, 9, 320, 50.0), now);
  EXPECT_LT(lead, trail);
}

TEST(PolicyTest, RetentionValuePrefersInactiveConversations) {
  RetentionValuePolicy policy(Estimator());
  const double now = 100.0;
  const double stale = policy.Score(MakeCandidate(1, 0, 320, 10.0), now);
  const double fresh = policy.Score(MakeCandidate(2, 0, 320, 99.0), now);
  EXPECT_LT(stale, fresh);
}

TEST(PolicyTest, RetentionValueTradesCostAgainstRecency) {
  // An expensive chunk of a long-idle conversation can still outrank a
  // cheap chunk of a just-active one — the paper's V = Cost/T ordering.
  RetentionValuePolicy policy(Estimator());
  const double now = 1000.0;
  const double expensive_idle = policy.Score(MakeCandidate(1, 99, 16000, 0.0), now);
  const double cheap_fresh = policy.Score(MakeCandidate(2, 0, 32, 999.9), now);
  EXPECT_LT(expensive_idle, cheap_fresh);
}

TEST(PolicyTest, LruOrdersByLastActive) {
  LruPolicy policy;
  const double now = 10.0;
  EXPECT_LT(policy.Score(MakeCandidate(1, 0, 32, 1.0), now),
            policy.Score(MakeCandidate(2, 0, 32, 5.0), now));
  // Ties broken toward the leading chunk.
  EXPECT_LT(policy.Score(MakeCandidate(1, 0, 32, 1.0), now),
            policy.Score(MakeCandidate(1, 3, 128, 1.0), now));
}

TEST(PolicyTest, CostOnlyIgnoresRecency) {
  CostOnlyPolicy policy(Estimator());
  const double s1 = policy.Score(MakeCandidate(1, 2, 96, 0.0), 100.0);
  const double s2 = policy.Score(MakeCandidate(1, 2, 96, 99.0), 100.0);
  EXPECT_DOUBLE_EQ(s1, s2);
}

TEST(PolicyTest, FactoryCreatesAllKinds) {
  ChunkCostEstimator est = Estimator();
  EXPECT_STREQ(MakeEvictionPolicy(EvictionPolicyKind::kRetentionValue, est)->name(),
               "retention-value");
  EXPECT_STREQ(MakeEvictionPolicy(EvictionPolicyKind::kLru, est)->name(), "lru");
  EXPECT_STREQ(MakeEvictionPolicy(EvictionPolicyKind::kCostOnly, est)->name(),
               "cost-only");
}

// --- CacheCoordinator -------------------------------------------------------------

struct CoordinatorFixture {
  explicit CoordinatorFixture(int64_t gpu_blocks = 8, int64_t cpu_blocks = 8,
                              bool use_cpu = true, double target = 0.25)
      : cache(MakeConfig(gpu_blocks, cpu_blocks)), estimator(Estimator()),
        policy(estimator),
        coordinator(&cache, &policy, MakeOptions(use_cpu, target)) {}

  static KvCacheConfig MakeConfig(int64_t gpu_blocks, int64_t cpu_blocks) {
    KvCacheConfig config;
    config.block_size = 4;
    config.num_gpu_blocks = gpu_blocks;
    config.num_cpu_blocks = cpu_blocks;
    return config;
  }
  static CacheCoordinator::Options MakeOptions(bool use_cpu, double target) {
    CacheCoordinator::Options o;
    o.use_cpu_cache = use_cpu;
    o.swap_out_target = target;
    return o;
  }

  TwoTierKvCache cache;
  ChunkCostEstimator estimator;
  RetentionValuePolicy policy;
  CacheCoordinator coordinator;
};

TEST(CoordinatorTest, AotSwapOutReachesTarget) {
  CoordinatorFixture fx(/*gpu_blocks=*/8, /*cpu_blocks=*/8, true, /*target=*/0.5);
  // Fill 7 of 8 GPU blocks across two conversations.
  ASSERT_TRUE(fx.cache.AppendTokenSlots(1, 16, nullptr).ok());
  ASSERT_TRUE(fx.cache.AppendTokenSlots(2, 12, nullptr).ok());
  fx.cache.Find(1)->set_last_active(0.0);
  fx.cache.Find(2)->set_last_active(5.0);
  EXPECT_EQ(fx.cache.AvailableGpuBlocks(), 1);

  const auto evicted = fx.coordinator.AheadOfTimeEvict(10.0);
  EXPECT_GE(evicted.swapped_out_tokens, 12);  // >= 3 chunks to reach 4 available
  EXPECT_EQ(evicted.dropped_tokens, 0);
  EXPECT_GE(fx.cache.AvailableGpuBlocks(), 4);
  // Swap-out is a copy: the chunks remain GPU-resident (lazy reclamation).
  EXPECT_EQ(fx.cache.Find(1)->TokensOnGpu(), 16);
  fx.cache.CheckInvariants();
}

TEST(CoordinatorTest, AotPrefersInactiveConversationChunks) {
  CoordinatorFixture fx(8, 8, true, 0.4);
  ASSERT_TRUE(fx.cache.AppendTokenSlots(1, 12, nullptr).ok());
  ASSERT_TRUE(fx.cache.AppendTokenSlots(2, 12, nullptr).ok());
  fx.cache.Find(1)->set_last_active(0.0);    // long idle
  fx.cache.Find(2)->set_last_active(99.0);   // just active
  fx.coordinator.AheadOfTimeEvict(100.0);
  // Conversation 1 should lose GPU-only status first.
  int64_t conv1_swapped = 0;
  int64_t conv2_swapped = 0;
  for (int64_t i = 0; i < 3; ++i) {
    conv1_swapped +=
        fx.cache.Find(1)->chunk(i).location == ChunkLocation::kGpuAndCpu ? 1 : 0;
    conv2_swapped +=
        fx.cache.Find(2)->chunk(i).location == ChunkLocation::kGpuAndCpu ? 1 : 0;
  }
  EXPECT_GT(conv1_swapped, 0);
  EXPECT_GE(conv1_swapped, conv2_swapped);
}

TEST(CoordinatorTest, AotSkipsPinnedConversations) {
  CoordinatorFixture fx(4, 8, true, 1.0);  // target = everything
  ASSERT_TRUE(fx.cache.AppendTokenSlots(1, 16, nullptr).ok());
  fx.cache.Find(1)->Pin();
  EXPECT_EQ(fx.coordinator.AheadOfTimeEvict(1.0).swapped_out_tokens, 0);
  fx.cache.Find(1)->Unpin();
  // Time advances between scheduler steps; the AOT retry guard only
  // suppresses rescans within the same virtual instant.
  EXPECT_GT(fx.coordinator.AheadOfTimeEvict(2.0).swapped_out_tokens, 0);
}

TEST(CoordinatorTest, EnsureFreeReclaimsCleanCopiesFirst) {
  CoordinatorFixture fx(4, 8);
  ASSERT_TRUE(fx.cache.AppendTokenSlots(1, 16, nullptr).ok());
  ASSERT_TRUE(fx.cache.SwapOut(1, 0).ok());
  ASSERT_TRUE(fx.cache.SwapOut(1, 1).ok());
  EXPECT_EQ(fx.cache.gpu_allocator().num_free(), 0);

  const auto outcome = fx.coordinator.EnsureFreeGpuBlocks(2, 1.0);
  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.reclaimed_blocks, 2);
  EXPECT_EQ(outcome.forced_swap_out_tokens, 0);  // clean copies sufficed
  EXPECT_EQ(fx.cache.gpu_allocator().num_free(), 2);
  fx.cache.CheckInvariants();
}

TEST(CoordinatorTest, EnsureFreeForcesSwapOutWhenNoCleanCopies) {
  CoordinatorFixture fx(4, 8);
  ASSERT_TRUE(fx.cache.AppendTokenSlots(1, 16, nullptr).ok());
  const auto outcome = fx.coordinator.EnsureFreeGpuBlocks(1, 1.0);
  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.forced_swap_out_tokens, 4);
  EXPECT_EQ(fx.cache.Find(1)->TokensCpuOnly(), 4);
  fx.cache.CheckInvariants();
}

TEST(CoordinatorTest, EnsureFreeDropsInGpuOnlyMode) {
  CoordinatorFixture fx(4, 0, /*use_cpu=*/false);
  ASSERT_TRUE(fx.cache.AppendTokenSlots(1, 16, nullptr).ok());
  const auto outcome = fx.coordinator.EnsureFreeGpuBlocks(2, 1.0);
  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.dropped_tokens, 8);
  EXPECT_EQ(fx.cache.Find(1)->LeadingDroppedChunks(), 2);
  fx.cache.CheckInvariants();
}

TEST(CoordinatorTest, EnsureFreeFailsWhenEverythingPinned) {
  CoordinatorFixture fx(4, 8);
  ASSERT_TRUE(fx.cache.AppendTokenSlots(1, 16, nullptr).ok());
  fx.cache.Find(1)->Pin();
  const auto outcome = fx.coordinator.EnsureFreeGpuBlocks(1, 1.0);
  EXPECT_FALSE(outcome.ok);
  fx.cache.Find(1)->Unpin();
}

TEST(CoordinatorTest, EnsureFreeCpuDropsFrontierChunks) {
  CoordinatorFixture fx(8, 2);
  ASSERT_TRUE(fx.cache.AppendTokenSlots(1, 8, nullptr).ok());
  ASSERT_TRUE(fx.cache.SwapOut(1, 0).ok());
  ASSERT_TRUE(fx.cache.ReclaimGpu(1, 0).ok());
  ASSERT_TRUE(fx.cache.SwapOut(1, 1).ok());
  ASSERT_TRUE(fx.cache.ReclaimGpu(1, 1).ok());
  EXPECT_EQ(fx.cache.cpu_allocator().num_free(), 0);

  EXPECT_TRUE(fx.coordinator.EnsureFreeCpuBlocks(1, 1.0));
  // The frontier (leading) chunk was dropped, not the trailing one.
  EXPECT_TRUE(fx.cache.Find(1)->chunk(0).Dropped());
  EXPECT_FALSE(fx.cache.Find(1)->chunk(1).Dropped());
  fx.cache.CheckInvariants();
}

TEST(CoordinatorTest, AotDropsInGpuOnlyMode) {
  CoordinatorFixture fx(/*gpu_blocks=*/8, /*cpu_blocks=*/0, /*use_cpu=*/false,
                        /*target=*/0.5);
  ASSERT_TRUE(fx.cache.AppendTokenSlots(1, 28, nullptr).ok());  // 7 of 8 blocks
  const auto evicted = fx.coordinator.AheadOfTimeEvict(1.0);
  EXPECT_EQ(evicted.swapped_out_tokens, 0);
  EXPECT_GE(evicted.dropped_tokens, 12);  // 3 chunks dropped to reach 4 free
  EXPECT_GE(fx.cache.AvailableGpuBlocks(), 4);
  fx.cache.CheckInvariants();
}

TEST(CoordinatorTest, FullyDroppedConversationIsForgotten) {
  CoordinatorFixture fx(/*gpu_blocks=*/4, /*cpu_blocks=*/0, /*use_cpu=*/false,
                        /*target=*/1.0);  // target: everything free
  ASSERT_TRUE(fx.cache.AppendTokenSlots(1, 16, nullptr).ok());
  fx.coordinator.AheadOfTimeEvict(1.0);
  // All chunks dropped => the conversation's bookkeeping is erased.
  EXPECT_EQ(fx.cache.Find(1), nullptr);
  fx.cache.CheckInvariants();
}

TEST(CoordinatorTest, ForgettingRespectsEnginePredicate) {
  KvCacheConfig config = CoordinatorFixture::MakeConfig(4, 0);
  TwoTierKvCache cache(config);
  ChunkCostEstimator estimator = Estimator();
  RetentionValuePolicy policy(estimator);
  CacheCoordinator coordinator(
      &cache, &policy, CoordinatorFixture::MakeOptions(false, 1.0),
      /*may_forget=*/[](int64_t) { return false; });
  ASSERT_TRUE(cache.AppendTokenSlots(1, 16, nullptr).ok());
  coordinator.AheadOfTimeEvict(1.0);
  // Chunks dropped but the conversation remains tracked.
  ASSERT_NE(cache.Find(1), nullptr);
  EXPECT_EQ(cache.Find(1)->LeadingDroppedChunks(), 4);
  cache.CheckInvariants();
}

TEST(CoordinatorTest, DropRespectsPrefixOrderAcrossMixedStates) {
  // Conversation with chunk 0 on CPU and chunk 1 on GPU: GPU-freeing drops
  // must never leave a resident chunk behind a dropped one.
  CoordinatorFixture fx(4, 4, /*use_cpu=*/true);
  ASSERT_TRUE(fx.cache.AppendTokenSlots(1, 16, nullptr).ok());
  for (int round = 0; round < 4; ++round) {
    fx.coordinator.EnsureFreeGpuBlocks(1, static_cast<double>(round + 1));
    fx.cache.CheckInvariants();  // includes the prefix-drop invariant
  }
}

}  // namespace
}  // namespace pensieve

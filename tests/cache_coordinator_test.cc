// Tests for the scheduler-side cache coordinator, in particular the
// ahead-of-time eviction retry guard: a pass that cannot reach the free
// target (CPU tier full) must not rescan within the same virtual instant
// unless the available block count changed.

#include <gtest/gtest.h>

#include "src/eviction/policy.h"
#include "src/kvcache/two_tier_cache.h"
#include "src/scheduler/cache_coordinator.h"

namespace pensieve {
namespace {

// 4 GPU blocks, 1 CPU block, 4-token chunks: with a 0.5 free target the
// CPU tier can never hold enough evicted chunks to satisfy a pass.
KvCacheConfig TinyConfig() {
  KvCacheConfig config;
  config.block_size = 4;
  config.num_gpu_blocks = 4;
  config.num_cpu_blocks = 1;
  return config;
}

class AotRetryGuardTest : public ::testing::Test {
 protected:
  AotRetryGuardTest() : cache_(TinyConfig()) {
    CacheCoordinator::Options options;
    options.swap_out_target = 0.5;  // 2 of 4 blocks
    coordinator_ = std::make_unique<CacheCoordinator>(&cache_, &policy_, options);
    for (int64_t id = 1; id <= 4; ++id) {
      EXPECT_TRUE(cache_.AppendTokenSlots(id, 4, nullptr).ok());
    }
  }

  TwoTierKvCache cache_;
  LruPolicy policy_;
  std::unique_ptr<CacheCoordinator> coordinator_;
};

TEST_F(AotRetryGuardTest, FailedPassSkipsRescanWithinSameInstant) {
  // First pass: the single CPU block forces a swap/discard tussle — each
  // swap-out evicts the previous candidate's CPU copy — and the pass ends
  // below target, arming the guard.
  const CacheCoordinator::EvictOutcome first = coordinator_->AheadOfTimeEvict(1.0);
  EXPECT_EQ(first.swapped_out_tokens, 16);
  const int64_t after_first = cache_.counters().swapped_out_chunks;
  EXPECT_EQ(after_first, 4);
  EXPECT_LT(cache_.AvailableGpuBlocks(), 2);

  // Same instant, same availability: the guard suppresses the rescan.
  const CacheCoordinator::EvictOutcome second = coordinator_->AheadOfTimeEvict(1.0);
  EXPECT_EQ(second.swapped_out_tokens, 0);
  EXPECT_EQ(cache_.counters().swapped_out_chunks, after_first);
}

TEST_F(AotRetryGuardTest, AvailabilityChangeRetriesWithinSameInstant) {
  (void)coordinator_->AheadOfTimeEvict(1.0);
  const int64_t after_first = cache_.counters().swapped_out_chunks;

  // Discard the surviving CPU copy behind the coordinator's back: available
  // drops from 1 to 0, which must defeat the guard and trigger a rescan.
  for (const auto& [id, state] : cache_.conversations()) {
    if (state.num_chunks() > 0 &&
        state.chunk(0).location == ChunkLocation::kGpuAndCpu) {
      ASSERT_TRUE(cache_.DropCpuCopy(id, 0).ok());
      break;
    }
  }
  ASSERT_EQ(cache_.AvailableGpuBlocks(), 0);
  const CacheCoordinator::EvictOutcome retry = coordinator_->AheadOfTimeEvict(1.0);
  EXPECT_GT(cache_.counters().swapped_out_chunks, after_first);
  EXPECT_GT(retry.swapped_out_tokens, 0);
}

TEST_F(AotRetryGuardTest, TimeAdvanceRetries) {
  (void)coordinator_->AheadOfTimeEvict(1.0);
  const int64_t after_first = cache_.counters().swapped_out_chunks;
  (void)coordinator_->AheadOfTimeEvict(1.0);
  ASSERT_EQ(cache_.counters().swapped_out_chunks, after_first);

  // Virtual time moved on: the guard no longer applies.
  (void)coordinator_->AheadOfTimeEvict(2.0);
  EXPECT_GT(cache_.counters().swapped_out_chunks, after_first);
}

TEST_F(AotRetryGuardTest, ReachingTargetClearsGuard) {
  (void)coordinator_->AheadOfTimeEvict(1.0);
  const int64_t after_first = cache_.counters().swapped_out_chunks;

  // Free two whole conversations; the target is now met, so the next pass
  // is a no-op success rather than a guarded failure.
  cache_.Release(1);
  cache_.Release(2);
  ASSERT_GE(cache_.AvailableGpuBlocks(), 2);
  const CacheCoordinator::EvictOutcome pass = coordinator_->AheadOfTimeEvict(1.0);
  EXPECT_EQ(pass.swapped_out_tokens, 0);
  EXPECT_EQ(cache_.counters().swapped_out_chunks, after_first);
  cache_.CheckInvariants();
}

TEST(CacheCoordinatorTest, PinnedConversationsAreNeverVictims) {
  TwoTierKvCache cache(TinyConfig());
  LruPolicy policy;
  CacheCoordinator::Options options;
  options.swap_out_target = 0.5;
  CacheCoordinator coordinator(&cache, &policy, options);
  for (int64_t id = 1; id <= 4; ++id) {
    ASSERT_TRUE(cache.AppendTokenSlots(id, 4, nullptr).ok());
    cache.GetOrCreate(id).Pin();
  }
  const CacheCoordinator::EvictOutcome outcome = coordinator.AheadOfTimeEvict(1.0);
  EXPECT_EQ(outcome.swapped_out_tokens, 0);
  EXPECT_EQ(outcome.dropped_tokens, 0);
  EXPECT_EQ(cache.counters().swapped_out_chunks, 0);
}

}  // namespace
}  // namespace pensieve

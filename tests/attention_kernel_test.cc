// Correctness tests for the attention kernels (src/kernels).
//
// Every kernel is validated against NaiveMaskedAttention (explicit score
// matrix + mask); the naive kernel itself is validated against a
// hand-computable case. Parameterized suites sweep query lengths, context
// sizes, GQA group sizes and block sizes.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "src/kernels/attention.h"
#include "src/kvcache/kv_pool.h"
#include "src/tensor/ops.h"

namespace pensieve {
namespace {

constexpr float kTol = 2e-4f;

struct KernelFixture {
  KernelFixture(int64_t num_blocks, int64_t block_size, int64_t num_kv_heads,
                int64_t head_dim, uint64_t seed)
      : pool(num_blocks, block_size, /*num_layers=*/1, num_kv_heads, head_dim),
        seed_(seed) {}

  // Fills `count` tokens of the given block table with random K/V.
  void FillContext(const std::vector<BlockId>& table, int64_t count) {
    for (int64_t pos = 0; pos < count; ++pos) {
      Tensor k({pool.num_kv_heads(), pool.head_dim()});
      Tensor v({pool.num_kv_heads(), pool.head_dim()});
      FillNormal(k, seed_ * 7919 + static_cast<uint64_t>(pos) * 2 + 1, 1.0f);
      FillNormal(v, seed_ * 104729 + static_cast<uint64_t>(pos) * 2 + 2, 1.0f);
      const BlockId block = table[static_cast<size_t>(pos / pool.block_size())];
      pool.WriteToken(block, 0, pos % pool.block_size(), k.data(), v.data());
    }
  }

  KvPool pool;
  uint64_t seed_;
};

// Builds a shuffled (non-contiguous) block table of n blocks.
std::vector<BlockId> ShuffledTable(int64_t num_blocks, int64_t offset) {
  std::vector<BlockId> table(static_cast<size_t>(num_blocks));
  std::iota(table.begin(), table.end(), 0);
  // Deterministic shuffle: rotate and reverse pairs.
  std::rotate(table.begin(), table.begin() + (offset % num_blocks), table.end());
  for (size_t i = 0; i + 1 < table.size(); i += 2) {
    std::swap(table[i], table[i + 1]);
  }
  return table;
}

TEST(NaiveAttentionTest, SingleTokenUniformValues) {
  // One query, two context tokens with identical keys and different values:
  // softmax weights are 0.5/0.5, so the output is the mean of the values.
  KvPool pool(1, 4, 1, 1, 2);
  std::vector<float> k = {1.0f, 0.0f};
  std::vector<float> v0 = {10.0f, 0.0f};
  std::vector<float> v1 = {20.0f, 2.0f};
  pool.WriteToken(0, 0, 0, k.data(), v0.data());
  pool.WriteToken(0, 0, 1, k.data(), v1.data());
  Tensor query({1, 1, 2}, {1.0f, 1.0f});
  Tensor out({1, 1, 2});
  std::vector<BlockId> table = {0};
  std::vector<AttentionSubRequest> subs = {{0, 1, 2, &table}};
  NaiveMaskedAttention(pool, 0, query, subs, 1.0f, &out);
  EXPECT_NEAR(out[0], 15.0f, 1e-4);
  EXPECT_NEAR(out[1], 1.0f, 1e-4);
}

TEST(NaiveAttentionTest, CausalMaskBlocksFutureTokens) {
  // Two query tokens in a 2-token context: token 0 must only see position 0.
  KvPool pool(1, 4, 1, 1, 2);
  std::vector<float> k = {1.0f, 0.0f};
  std::vector<float> v0 = {1.0f, 0.0f};
  std::vector<float> v1 = {100.0f, 0.0f};
  pool.WriteToken(0, 0, 0, k.data(), v0.data());
  pool.WriteToken(0, 0, 1, k.data(), v1.data());
  Tensor query({2, 1, 2}, {1.0f, 0.0f, 1.0f, 0.0f});
  Tensor out({2, 1, 2});
  std::vector<BlockId> table = {0};
  std::vector<AttentionSubRequest> subs = {{0, 2, 2, &table}};
  NaiveMaskedAttention(pool, 0, query, subs, 1.0f, &out);
  // Token 0 sees only v0.
  EXPECT_NEAR(out.at({0, 0, 0}), 1.0f, 1e-4);
  // Token 1 averages v0 and v1 (identical keys).
  EXPECT_NEAR(out.at({1, 0, 0}), 50.5f, 1e-3);
}

struct KernelCase {
  int64_t num_heads;
  int64_t num_kv_heads;
  int64_t head_dim;
  int64_t block_size;
  int64_t query_len;
  int64_t context_len;
};

std::string CaseName(const ::testing::TestParamInfo<KernelCase>& info) {
  const KernelCase& c = info.param;
  return "h" + std::to_string(c.num_heads) + "kv" + std::to_string(c.num_kv_heads) +
         "d" + std::to_string(c.head_dim) + "b" + std::to_string(c.block_size) + "q" +
         std::to_string(c.query_len) + "c" + std::to_string(c.context_len);
}

class MultiTokenAttentionParamTest : public ::testing::TestWithParam<KernelCase> {};

TEST_P(MultiTokenAttentionParamTest, MatchesNaiveReference) {
  const KernelCase& c = GetParam();
  const int64_t num_blocks = (c.context_len + c.block_size - 1) / c.block_size;
  KernelFixture fx(num_blocks + 2, c.block_size, c.num_kv_heads, c.head_dim, 13);
  std::vector<BlockId> table = ShuffledTable(num_blocks + 2, 3);
  table.resize(static_cast<size_t>(num_blocks));
  fx.FillContext(table, c.context_len);

  Tensor query({c.query_len, c.num_heads, c.head_dim});
  FillNormal(query, 99, 1.0f);
  const float scale = 1.0f / std::sqrt(static_cast<float>(c.head_dim));
  std::vector<AttentionSubRequest> subs = {{0, c.query_len, c.context_len, &table}};

  Tensor expected({c.query_len, c.num_heads, c.head_dim});
  NaiveMaskedAttention(fx.pool, 0, query, subs, scale, &expected);

  Tensor got({c.query_len, c.num_heads, c.head_dim});
  MultiTokenPagedAttention(fx.pool, 0, query, subs, scale, &got);
  EXPECT_LT(MaxAbsDiff(expected, got), kTol);
}

TEST_P(MultiTokenAttentionParamTest, CopyOutStrawmanMatches) {
  const KernelCase& c = GetParam();
  const int64_t num_blocks = (c.context_len + c.block_size - 1) / c.block_size;
  KernelFixture fx(num_blocks + 2, c.block_size, c.num_kv_heads, c.head_dim, 17);
  std::vector<BlockId> table = ShuffledTable(num_blocks + 2, 1);
  table.resize(static_cast<size_t>(num_blocks));
  fx.FillContext(table, c.context_len);

  Tensor query({c.query_len, c.num_heads, c.head_dim});
  FillNormal(query, 55, 1.0f);
  const float scale = 0.25f;
  std::vector<AttentionSubRequest> subs = {{0, c.query_len, c.context_len, &table}};

  Tensor expected({c.query_len, c.num_heads, c.head_dim});
  NaiveMaskedAttention(fx.pool, 0, query, subs, scale, &expected);
  Tensor got({c.query_len, c.num_heads, c.head_dim});
  CopyOutPagedAttention(fx.pool, 0, query, subs, scale, &got);
  EXPECT_LT(MaxAbsDiff(expected, got), kTol);
}

TEST_P(MultiTokenAttentionParamTest, MultiRoundStrawmanMatches) {
  const KernelCase& c = GetParam();
  const int64_t num_blocks = (c.context_len + c.block_size - 1) / c.block_size;
  KernelFixture fx(num_blocks + 2, c.block_size, c.num_kv_heads, c.head_dim, 23);
  std::vector<BlockId> table = ShuffledTable(num_blocks + 2, 2);
  table.resize(static_cast<size_t>(num_blocks));
  fx.FillContext(table, c.context_len);

  Tensor query({c.query_len, c.num_heads, c.head_dim});
  FillNormal(query, 77, 1.0f);
  const float scale = 0.3f;
  std::vector<AttentionSubRequest> subs = {{0, c.query_len, c.context_len, &table}};

  Tensor expected({c.query_len, c.num_heads, c.head_dim});
  NaiveMaskedAttention(fx.pool, 0, query, subs, scale, &expected);
  Tensor got({c.query_len, c.num_heads, c.head_dim});
  MultiRoundPagedAttention(fx.pool, 0, query, subs, scale, &got);
  EXPECT_LT(MaxAbsDiff(expected, got), kTol);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MultiTokenAttentionParamTest,
    ::testing::Values(
        // Decode shape (single query token).
        KernelCase{2, 2, 8, 4, 1, 1}, KernelCase{2, 2, 8, 4, 1, 17},
        // Prefill shapes.
        KernelCase{2, 2, 8, 4, 5, 5}, KernelCase{4, 4, 16, 8, 8, 40},
        // Query == context crossing multiple blocks.
        KernelCase{2, 2, 8, 4, 13, 13},
        // GQA group sizes 2 and 4 (paper's Llama 2 configs).
        KernelCase{4, 2, 8, 4, 6, 22}, KernelCase{8, 2, 8, 8, 8, 33},
        // Context not a multiple of block size.
        KernelCase{2, 2, 8, 8, 3, 21}, KernelCase{2, 1, 4, 32, 8, 97},
        // Larger head dims.
        KernelCase{2, 2, 32, 16, 4, 64}),
    CaseName);

TEST(MultiTokenAttentionTest, BatchedRaggedQueries) {
  // Three requests with different query lengths in one batch, each with its
  // own shuffled block table.
  const int64_t block_size = 4;
  const int64_t head_dim = 8;
  KernelFixture fx(16, block_size, 2, head_dim, 31);

  std::vector<BlockId> table_a = {3, 0, 7};
  std::vector<BlockId> table_b = {5, 1};
  std::vector<BlockId> table_c = {9, 2, 11, 4};
  fx.FillContext(table_a, 10);
  fx.seed_ = 32;
  fx.FillContext(table_b, 6);
  fx.seed_ = 33;
  fx.FillContext(table_c, 16);

  const int64_t total_q = 2 + 1 + 5;
  Tensor query({total_q, 4, head_dim});
  FillNormal(query, 44, 1.0f);
  std::vector<AttentionSubRequest> subs = {
      {0, 2, 10, &table_a},  // prefill tail of request A
      {2, 1, 6, &table_b},   // decode token of request B
      {3, 5, 16, &table_c},  // prefill of request C
  };
  const float scale = 0.35f;
  Tensor expected({total_q, 4, head_dim});
  NaiveMaskedAttention(fx.pool, 0, query, subs, scale, &expected);
  Tensor got({total_q, 4, head_dim});
  MultiTokenPagedAttention(fx.pool, 0, query, subs, scale, &got);
  EXPECT_LT(MaxAbsDiff(expected, got), kTol);
}

TEST(MultiTokenAttentionTest, DroppedPrefixSubRequestSplit) {
  // Paper §4.3.4: a request whose leading d tokens were dropped is executed
  // as two sub-requests sharing one block table — the recomputed prefix
  // attends to itself, the new prompt attends to everything. The combined
  // result must equal a single full prefill over the same context.
  const int64_t block_size = 4;
  const int64_t head_dim = 8;
  const int64_t d = 6;          // dropped prefix
  const int64_t middle = 6;     // tokens already cached
  const int64_t new_prompt = 4;
  const int64_t total = d + middle + new_prompt;
  KernelFixture fx(8, block_size, 2, head_dim, 71);
  std::vector<BlockId> table = {2, 6, 1, 5};
  fx.FillContext(table, total);

  Tensor full_query({total, 2, head_dim});
  FillNormal(full_query, 88, 1.0f);
  const float scale = 0.25f;

  // Reference: one contiguous prefill over all 16 tokens.
  std::vector<AttentionSubRequest> full_sub = {{0, total, total, &table}};
  Tensor expected({total, 2, head_dim});
  NaiveMaskedAttention(fx.pool, 0, full_query, full_sub, scale, &expected);

  // Split execution: queries for [0, d) and [d + middle, total) only.
  Tensor split_query({d + new_prompt, 2, head_dim});
  for (int64_t t = 0; t < d; ++t) {
    for (int64_t i = 0; i < 2 * head_dim; ++i) {
      split_query[t * 2 * head_dim + i] = full_query[t * 2 * head_dim + i];
    }
  }
  for (int64_t t = 0; t < new_prompt; ++t) {
    for (int64_t i = 0; i < 2 * head_dim; ++i) {
      split_query[(d + t) * 2 * head_dim + i] =
          full_query[(d + middle + t) * 2 * head_dim + i];
    }
  }
  std::vector<AttentionSubRequest> split_subs = {
      {0, d, d, &table},                  // prefix attends to itself
      {d, new_prompt, total, &table},     // prompt attends to the whole context
  };
  Tensor got({d + new_prompt, 2, head_dim});
  MultiTokenPagedAttention(fx.pool, 0, split_query, split_subs, scale, &got);

  for (int64_t t = 0; t < d; ++t) {
    for (int64_t i = 0; i < 2 * head_dim; ++i) {
      EXPECT_NEAR(got[t * 2 * head_dim + i], expected[t * 2 * head_dim + i], kTol)
          << "prefix token " << t;
    }
  }
  for (int64_t t = 0; t < new_prompt; ++t) {
    for (int64_t i = 0; i < 2 * head_dim; ++i) {
      EXPECT_NEAR(got[(d + t) * 2 * head_dim + i],
                  expected[(d + middle + t) * 2 * head_dim + i], kTol)
          << "prompt token " << t;
    }
  }
}

TEST(SingleTokenAttentionTest, MatchesMultiTokenForDecode) {
  KernelFixture fx(8, 4, 2, 8, 41);
  std::vector<BlockId> table = {1, 4, 2};
  fx.FillContext(table, 11);
  Tensor query({1, 4, 8});
  FillNormal(query, 11, 1.0f);
  std::vector<AttentionSubRequest> subs = {{0, 1, 11, &table}};
  Tensor a({1, 4, 8});
  Tensor b({1, 4, 8});
  SingleTokenPagedAttention(fx.pool, 0, query, subs, 0.25f, &a);
  MultiTokenPagedAttention(fx.pool, 0, query, subs, 0.25f, &b);
  EXPECT_FLOAT_EQ(MaxAbsDiff(a, b), 0.0f);
}

TEST(SingleTokenAttentionDeathTest, RejectsMultiTokenQueries) {
  KernelFixture fx(4, 4, 1, 4, 5);
  std::vector<BlockId> table = {0};
  fx.FillContext(table, 2);
  Tensor query({2, 1, 4});
  FillNormal(query, 1, 1.0f);
  Tensor out({2, 1, 4});
  std::vector<AttentionSubRequest> subs = {{0, 2, 2, &table}};
  EXPECT_DEATH(SingleTokenPagedAttention(fx.pool, 0, query, subs, 1.0f, &out),
               "restricted to one input token");
}

TEST(ContiguousAttentionTest, MatchesPagedKernelOnSameData) {
  // The "ideal" dense-layout kernel must agree with the paged kernel when
  // fed the same logical context.
  const int64_t block_size = 4;
  const int64_t ctx = 14;
  const int64_t q_len = 5;
  KernelFixture fx(8, block_size, 2, 8, 61);
  std::vector<BlockId> table = {6, 0, 3, 5};
  fx.FillContext(table, ctx);

  // Gather dense copies.
  Tensor keys({ctx, 2, 8});
  Tensor values({ctx, 2, 8});
  for (int64_t pos = 0; pos < ctx; ++pos) {
    const BlockId b = table[static_cast<size_t>(pos / block_size)];
    const float* k = fx.pool.TokenData(b, 0, 0, pos % block_size);
    const float* v = fx.pool.TokenData(b, 0, 1, pos % block_size);
    std::copy(k, k + 16, keys.data() + pos * 16);
    std::copy(v, v + 16, values.data() + pos * 16);
  }

  Tensor query({q_len, 4, 8});
  FillNormal(query, 21, 1.0f);
  std::vector<AttentionSubRequest> subs = {{0, q_len, ctx, &table}};
  Tensor paged({q_len, 4, 8});
  MultiTokenPagedAttention(fx.pool, 0, query, subs, 0.2f, &paged);

  std::vector<ContiguousAttentionRequest> dense = {{0, q_len, &keys, &values}};
  Tensor contiguous({q_len, 4, 8});
  ContiguousAttention(query, dense, 0.2f, &contiguous);
  EXPECT_LT(MaxAbsDiff(paged, contiguous), kTol);
}

TEST(MultiTokenAttentionTest, OutputIsPermutationInvariantToBlockPlacement) {
  // The same logical context stored under two different physical block
  // layouts must produce identical outputs — the defining property of
  // paged attention.
  const int64_t block_size = 4;
  const int64_t ctx = 12;
  KernelFixture fx1(8, block_size, 1, 8, 91);
  KernelFixture fx2(8, block_size, 1, 8, 91);  // same data seed
  std::vector<BlockId> table1 = {0, 1, 2};
  std::vector<BlockId> table2 = {7, 3, 5};
  fx1.FillContext(table1, ctx);
  fx2.FillContext(table2, ctx);

  Tensor query({4, 1, 8});
  FillNormal(query, 14, 1.0f);
  std::vector<AttentionSubRequest> subs1 = {{0, 4, ctx, &table1}};
  std::vector<AttentionSubRequest> subs2 = {{0, 4, ctx, &table2}};
  Tensor out1({4, 1, 8});
  Tensor out2({4, 1, 8});
  MultiTokenPagedAttention(fx1.pool, 0, query, subs1, 0.25f, &out1);
  MultiTokenPagedAttention(fx2.pool, 0, query, subs2, 0.25f, &out2);
  EXPECT_FLOAT_EQ(MaxAbsDiff(out1, out2), 0.0f);
}

TEST(MultiTokenAttentionTest, GqaHeadsShareKvHead) {
  // With identical per-group queries, all heads in a GQA group produce the
  // same output because they read the same KV head.
  KernelFixture fx(4, 4, 1, 8, 19);
  std::vector<BlockId> table = {2, 0};
  fx.FillContext(table, 7);
  Tensor query({1, 2, 8});  // 2 query heads sharing 1 KV head
  FillNormal(query, 3, 1.0f);
  // Make head 1's query identical to head 0's.
  for (int64_t i = 0; i < 8; ++i) {
    query[8 + i] = query[i];
  }
  std::vector<AttentionSubRequest> subs = {{0, 1, 7, &table}};
  Tensor out({1, 2, 8});
  MultiTokenPagedAttention(fx.pool, 0, query, subs, 0.5f, &out);
  for (int64_t i = 0; i < 8; ++i) {
    EXPECT_FLOAT_EQ(out[i], out[8 + i]);
  }
}

}  // namespace
}  // namespace pensieve

// Correctness of the cache-blocked packed GEMM (src/tensor/packed_matrix.h)
// against the naive transposed-B matmul, with emphasis on the awkward
// shapes: m = 1 (the decode GEMV path), k not a multiple of the unroll or of
// the kKC cache block, n below one panel, and ragged remainder tiles on both
// axes. Also pins the batch-invariance property the determinism contract
// implies: the same input row produces byte-identical output whether it is
// multiplied alone or inside a larger batch.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "src/tensor/ops.h"
#include "src/tensor/packed_matrix.h"

namespace pensieve {
namespace {

// Reassociation tolerance: both sides accumulate k products of O(1) values
// in different orders.
float TolForK(int64_t k) { return 1e-4f + 1e-6f * static_cast<float>(k); }

TEST(PackedGemmTest, MatchesNaiveAcrossOddShapes) {
  const int64_t ms[] = {1, 2, 3, 4, 5, 8, 17};
  const int64_t ks[] = {1, 3, 37, 515};
  const int64_t ns[] = {1, 5, 8, 9, 130};
  for (int64_t m : ms) {
    for (int64_t k : ks) {
      for (int64_t n : ns) {
        Tensor a({m, k});
        Tensor w({n, k});
        FillNormal(a, static_cast<uint64_t>(m * 10007 + k * 101 + n), 1.0f);
        FillNormal(w, static_cast<uint64_t>(m * 997 + k * 13 + n + 1), 1.0f);
        const PackedMatrix packed(w);
        EXPECT_EQ(packed.out_dim(), n);
        EXPECT_EQ(packed.in_dim(), k);
        const Tensor expected = MatMulTransposedB(a, w);
        const Tensor got = MatMulPacked(a, packed);
        ASSERT_TRUE(expected.SameShape(got));
        EXPECT_LE(MaxAbsDiff(expected, got), TolForK(k))
            << "m=" << m << " k=" << k << " n=" << n;
      }
    }
  }
}

TEST(PackedGemmTest, KcBlockingBoundary) {
  // k straddling the kKC = 512 cache block: one element under, exact, one
  // over, and several blocks with a remainder.
  for (int64_t k : {511, 512, 513, 1200}) {
    Tensor a({6, k});
    Tensor w({19, k});
    FillNormal(a, static_cast<uint64_t>(k), 1.0f);
    FillNormal(w, static_cast<uint64_t>(k + 1), 1.0f);
    const Tensor expected = MatMulTransposedB(a, w);
    const Tensor got = MatMulPacked(a, PackedMatrix(w));
    EXPECT_LE(MaxAbsDiff(expected, got), TolForK(k)) << "k=" << k;
  }
}

TEST(PackedGemmTest, IntoOverwritesExistingContents) {
  Tensor a({3, 20});
  Tensor w({11, 20});
  FillNormal(a, 1, 1.0f);
  FillNormal(w, 2, 1.0f);
  const PackedMatrix packed(w);
  const Tensor expected = MatMulPacked(a, packed);
  // MatMulPackedInto must fully overwrite c, including poison values —
  // workspace arenas hand back dirty memory.
  Tensor c = Tensor::Full({3, 11}, 1e30f);
  MatMulPackedInto(a, packed, &c);
  EXPECT_EQ(0, std::memcmp(expected.data(), c.data(),
                           static_cast<size_t>(c.numel()) * sizeof(float)));
}

TEST(PackedGemmTest, RowsAreBatchSizeInvariant) {
  // The per-element reduction order is independent of the batch size and of
  // which partitioning path ran, so multiplying one row alone (GEMV path)
  // must reproduce the same bytes as that row inside a 17-row batch (row
  // path), for every row-remainder position within the 4-row micro tile.
  const int64_t k = 515, n = 130;
  Tensor a({17, k});
  Tensor w({n, k});
  FillNormal(a, 3, 1.0f);
  FillNormal(w, 4, 1.0f);
  const PackedMatrix packed(w);
  const Tensor batch = MatMulPacked(a, packed);
  for (int64_t i = 0; i < a.dim(0); ++i) {
    const Tensor row = MatMulPacked(a.SliceRows(i, i + 1), packed);
    EXPECT_EQ(0, std::memcmp(batch.data() + i * n, row.data(),
                             static_cast<size_t>(n) * sizeof(float)))
        << "row " << i;
  }
}

TEST(PackedGemmTest, ZeroSizedDims) {
  Tensor w({8, 16});
  FillNormal(w, 5, 1.0f);
  const PackedMatrix packed(w);
  Tensor a({0, 16});
  const Tensor empty = MatMulPacked(a, packed);
  EXPECT_EQ(empty.dim(0), 0);
  // k == 0 must yield zeros, not dirty memory.
  Tensor wk0({4, 0});
  Tensor ak0({3, 0});
  Tensor c = Tensor::Full({3, 4}, 7.0f);
  MatMulPackedInto(ak0, PackedMatrix(wk0), &c);
  for (int64_t i = 0; i < c.numel(); ++i) {
    EXPECT_EQ(c[i], 0.0f);
  }
}

TEST(PackedGemmTest, MatMulHandlesZeroActivations) {
  // The branch-free MatMul inner loop must still be exact when A is riddled
  // with zeros (the removed `if (av == 0) continue` fast-path).
  Tensor a({5, 12});
  Tensor b({12, 7});
  FillNormal(a, 6, 1.0f);
  FillNormal(b, 7, 1.0f);
  for (int64_t i = 0; i < a.numel(); i += 3) {
    a[i] = 0.0f;
  }
  const Tensor got = MatMul(a, b);
  for (int64_t i = 0; i < 5; ++i) {
    for (int64_t j = 0; j < 7; ++j) {
      double ref = 0.0;
      for (int64_t kk = 0; kk < 12; ++kk) {
        ref += static_cast<double>(a.at({i, kk})) * static_cast<double>(b.at({kk, j}));
      }
      EXPECT_NEAR(got.at({i, j}), static_cast<float>(ref), 1e-4) << i << "," << j;
    }
  }
}

}  // namespace
}  // namespace pensieve

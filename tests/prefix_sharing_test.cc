// Tests for cross-conversation shared-prefix dedup: the content-addressed
// prefix trie, refcounted block sharing with copy-on-write in the two-tier
// cache, and the engine-level template attach / publish path.

#include <gtest/gtest.h>

#include <vector>

#include "src/common/hash.h"
#include "src/kvcache/prefix_trie.h"
#include "src/kvcache/two_tier_cache.h"
#include "src/model/model_config.h"
#include "src/serving/pensieve_engine.h"
#include "src/sim/hardware.h"

namespace pensieve {
namespace {

// --- PrefixTrie --------------------------------------------------------------

TEST(PrefixTrieTest, PublishAndLookupLongestPrefix) {
  PrefixTrie trie;
  EXPECT_EQ(trie.Publish({11, 22, 33}, {BlockId{0}, BlockId{1}, BlockId{2}}), 3);
  EXPECT_EQ(trie.size(), 3);

  std::vector<BlockId> blocks;
  EXPECT_EQ(trie.Lookup({11, 22, 33}, &blocks), 3);
  EXPECT_EQ(blocks, (std::vector<BlockId>{0, 1, 2}));

  blocks.clear();
  EXPECT_EQ(trie.Lookup({11, 22}, &blocks), 2);
  // A longer chain matches its published prefix.
  blocks.clear();
  EXPECT_EQ(trie.Lookup({11, 22, 33, 44}, &blocks), 3);
  // Divergence at depth 1 stops the walk.
  blocks.clear();
  EXPECT_EQ(trie.Lookup({11, 99, 33}, &blocks), 1);
  EXPECT_EQ(blocks, std::vector<BlockId>{0});
  EXPECT_EQ(trie.Lookup({99}, &blocks), 0);
}

TEST(PrefixTrieTest, FirstPublisherWins) {
  PrefixTrie trie;
  trie.Publish({11, 22}, {BlockId{0}, BlockId{1}});
  // Re-publishing the same chain with different blocks creates no nodes and
  // keeps the original blocks (those are the ones readers already share).
  EXPECT_EQ(trie.Publish({11, 22}, {BlockId{5}, BlockId{6}}), 0);
  std::vector<BlockId> blocks;
  EXPECT_EQ(trie.Lookup({11, 22}, &blocks), 2);
  EXPECT_EQ(blocks, (std::vector<BlockId>{0, 1}));
  // Extending an existing chain only creates the new suffix nodes.
  EXPECT_EQ(trie.Publish({11, 22, 33}, {BlockId{7}, BlockId{8}, BlockId{9}}), 1);
  blocks.clear();
  EXPECT_EQ(trie.Lookup({11, 22, 33}, &blocks), 3);
  EXPECT_EQ(blocks, (std::vector<BlockId>{0, 1, 9}));
}

TEST(PrefixTrieTest, InvalidateSeversWholeSubtree) {
  PrefixTrie trie;
  trie.Publish({11, 22, 33}, {BlockId{0}, BlockId{1}, BlockId{2}});
  trie.Publish({11, 44}, {BlockId{0}, BlockId{3}});
  ASSERT_EQ(trie.size(), 4);
  // Killing the depth-1 node takes its descendant with it but leaves the
  // sibling branch alone.
  EXPECT_EQ(trie.InvalidateBlock(BlockId{1}), 2);
  EXPECT_FALSE(trie.ContainsBlock(BlockId{2}));
  std::vector<BlockId> blocks;
  EXPECT_EQ(trie.Lookup({11, 22, 33}, &blocks), 1);
  blocks.clear();
  EXPECT_EQ(trie.Lookup({11, 44}, &blocks), 2);
  // Invalidating an unreferenced block is a no-op.
  EXPECT_EQ(trie.InvalidateBlock(BlockId{77}), 0);
}

// --- TwoTierKvCache sharing --------------------------------------------------

KvCacheConfig SharedConfig(int64_t gpu_blocks = 8, int64_t cpu_blocks = 8) {
  KvCacheConfig config;
  config.block_size = 4;
  config.num_gpu_blocks = gpu_blocks;
  config.num_cpu_blocks = cpu_blocks;
  config.enable_prefix_sharing = true;
  return config;
}

TEST(PrefixSharingCacheTest, AttachBumpsRefcountWithoutNewBlocks) {
  TwoTierKvCache cache(SharedConfig());
  ASSERT_TRUE(cache.AppendTokenSlots(1, 8, nullptr).ok());
  std::vector<BlockId> published = cache.GpuBlockTable(1);
  ASSERT_EQ(cache.PublishSharedPrefix({11, 22}, published), 2);

  std::vector<BlockId> matched;
  ASSERT_EQ(cache.LookupSharedPrefix({11, 22}, &matched), 2);
  const int64_t allocated_before = cache.gpu_allocator().num_allocated();
  EXPECT_EQ(cache.AttachSharedPrefix(2, matched, 8), 8);
  // The reader's 8 tokens cost zero physical blocks.
  EXPECT_EQ(cache.gpu_allocator().num_allocated(), allocated_before);
  EXPECT_EQ(cache.gpu_allocator().refcount(published[0]), 2);
  EXPECT_EQ(cache.Find(2)->kv_len(), 8);
  EXPECT_EQ(cache.Find(2)->TokensOnGpu(), 8);
  EXPECT_TRUE(cache.SharedGpuBlock(published[0]));
  EXPECT_EQ(cache.counters().shared_attached_tokens, 8);
  EXPECT_EQ(cache.counters().peak_shared_blocks, 2);
  cache.CheckInvariants();
  cache.Release(1);
  cache.Release(2);
}

TEST(PrefixSharingCacheTest, DetachingOneReaderKeepsTheOther) {
  TwoTierKvCache cache(SharedConfig());
  ASSERT_TRUE(cache.AppendTokenSlots(1, 4, nullptr).ok());
  std::vector<BlockId> published = cache.GpuBlockTable(1);
  cache.PublishSharedPrefix({11}, published);
  cache.AttachSharedPrefix(2, published, 4);

  // Releasing the reader frees no physical memory and keeps the trie entry.
  cache.Release(2);
  EXPECT_EQ(cache.gpu_allocator().refcount(published[0]), 1);
  EXPECT_TRUE(cache.prefix_trie().ContainsBlock(published[0]));
  EXPECT_EQ(cache.Find(1)->chunk(0).gpu_block, published[0]);

  // Releasing the last holder frees the block and severs the trie entry, so
  // a later lookup cannot hand out a dangling block.
  cache.Release(1);
  EXPECT_EQ(cache.gpu_allocator().num_allocated(), 0);
  EXPECT_FALSE(cache.prefix_trie().ContainsBlock(published[0]));
  std::vector<BlockId> matched;
  EXPECT_EQ(cache.LookupSharedPrefix({11}, &matched), 0);
  cache.CheckInvariants();
}

TEST(PrefixSharingCacheTest, CowOnDivergenceMidBlock) {
  TwoTierKvCache cache(SharedConfig());
  ASSERT_TRUE(cache.AppendTokenSlots(1, 4, nullptr).ok());
  std::vector<BlockId> published = cache.GpuBlockTable(1);
  cache.PublishSharedPrefix({11}, published);
  // Partial view: 3 of the block's 4 tokens. Writing token 4 must not
  // clobber the publisher's copy.
  cache.AttachSharedPrefix(2, published, 3);
  EXPECT_EQ(cache.AppendBlockDemand(2, 1), 1);  // the copy-on-write block

  std::vector<ContextState::SlotRef> slots;
  ASSERT_TRUE(cache.AppendTokenSlots(2, 1, &slots).ok());
  EXPECT_EQ(cache.counters().cow_copies, 1);
  const BlockId private_block = cache.Find(2)->chunk(0).gpu_block;
  EXPECT_NE(private_block, published[0]);
  ASSERT_EQ(slots.size(), 1u);
  EXPECT_EQ(slots[0].block, private_block);
  EXPECT_EQ(slots[0].slot, 3);
  // The shared block is back to a single reference; the publisher's chunk
  // still points at it.
  EXPECT_EQ(cache.gpu_allocator().refcount(published[0]), 1);
  EXPECT_EQ(cache.Find(1)->chunk(0).gpu_block, published[0]);
  EXPECT_FALSE(cache.SharedGpuBlock(published[0]));
  // Subsequent appends are plain appends — one copy per divergence.
  ASSERT_TRUE(cache.AppendTokenSlots(2, 4, nullptr).ok());
  EXPECT_EQ(cache.counters().cow_copies, 1);
  cache.CheckInvariants();
  cache.Release(1);
  cache.Release(2);
}

TEST(PrefixSharingCacheTest, CowCopiesBytesInNumericMode) {
  KvCacheConfig config = SharedConfig();
  config.numeric = true;
  config.num_layers = 1;
  config.num_kv_heads = 1;
  config.head_dim = 2;
  TwoTierKvCache cache(config);
  std::vector<ContextState::SlotRef> slots;
  ASSERT_TRUE(cache.AppendTokenSlots(1, 4, &slots).ok());
  for (int64_t i = 0; i < 4; ++i) {
    std::vector<float> k = {static_cast<float>(i), static_cast<float>(i) + 0.5f};
    std::vector<float> v = {-static_cast<float>(i), 10.0f + static_cast<float>(i)};
    cache.gpu_pool()->WriteToken(slots[i].block, 0, slots[i].slot, k.data(), v.data());
  }
  std::vector<BlockId> published = cache.GpuBlockTable(1);
  cache.PublishSharedPrefix({11}, published);
  cache.AttachSharedPrefix(2, published, 3);

  slots.clear();
  ASSERT_TRUE(cache.AppendTokenSlots(2, 1, &slots).ok());
  const BlockId reader_block = cache.Find(2)->chunk(0).gpu_block;
  ASSERT_NE(reader_block, published[0]);
  // The shared tokens arrived byte-identical in the private copy.
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_FLOAT_EQ(cache.gpu_pool()->TokenData(reader_block, 0, 0, i)[0],
                    static_cast<float>(i));
    EXPECT_FLOAT_EQ(cache.gpu_pool()->TokenData(reader_block, 0, 1, i)[1],
                    10.0f + static_cast<float>(i));
  }
  // Divergent token goes only to the private copy.
  std::vector<float> k = {99.0f, 99.0f};
  std::vector<float> v = {99.0f, 99.0f};
  cache.gpu_pool()->WriteToken(slots[0].block, 0, slots[0].slot, k.data(), v.data());
  EXPECT_FLOAT_EQ(cache.gpu_pool()->TokenData(reader_block, 0, 0, 3)[0], 99.0f);
  EXPECT_FLOAT_EQ(cache.gpu_pool()->TokenData(published[0], 0, 0, 3)[0], 3.0f);
  cache.Release(1);
  cache.Release(2);
}

TEST(PrefixSharingCacheTest, ReattachDroppedChunkToLivePublishedBlock) {
  TwoTierKvCache cache(SharedConfig());
  ASSERT_TRUE(cache.AppendTokenSlots(1, 8, nullptr).ok());
  std::vector<BlockId> published = cache.GpuBlockTable(1);
  cache.PublishSharedPrefix({11, 22}, published);
  cache.AttachSharedPrefix(2, published, 8);

  // The reader loses its first chunk to eviction, then gets it back as a
  // refcount bump instead of a restore + recompute.
  ASSERT_TRUE(cache.DropChunk(2, 0).ok());
  EXPECT_EQ(cache.gpu_allocator().refcount(published[0]), 1);
  ASSERT_TRUE(cache.ReattachDroppedShared(2, 0, published[0]).ok());
  EXPECT_EQ(cache.gpu_allocator().refcount(published[0]), 2);
  EXPECT_EQ(cache.Find(2)->chunk(0).location, ChunkLocation::kGpu);
  EXPECT_EQ(cache.Find(2)->chunk(0).num_tokens, 4);
  EXPECT_EQ(cache.Find(2)->TokensDropped(), 0);

  // Guard rails: only dropped, full chunks qualify.
  EXPECT_EQ(cache.ReattachDroppedShared(2, 0, published[0]).code(),
            StatusCode::kFailedPrecondition);
  cache.CheckInvariants();
  cache.Release(1);
  cache.Release(2);
}

TEST(PrefixSharingCacheTest, SharedBlockThroughSsdRoundTripByOneReader) {
  KvCacheConfig config = SharedConfig();
  config.num_ssd_blocks = 8;
  config.ssd_segment_blocks = 4;
  TwoTierKvCache cache(config);
  ASSERT_TRUE(cache.AppendTokenSlots(1, 4, nullptr).ok());
  std::vector<BlockId> published = cache.GpuBlockTable(1);
  cache.PublishSharedPrefix({11}, published);
  cache.AttachSharedPrefix(2, published, 4);

  // Reader 2's chunk rides the full demotion pipeline: its CPU copy and SSD
  // copy are private, so the publisher's view never moves.
  ASSERT_TRUE(cache.SwapOut(2, 0).ok());
  ASSERT_TRUE(cache.ReclaimGpu(2, 0).ok());
  // Reclaim detached reader 2 from the shared block; publisher unaffected.
  EXPECT_EQ(cache.gpu_allocator().refcount(published[0]), 1);
  EXPECT_EQ(cache.Find(1)->chunk(0).gpu_block, published[0]);
  ASSERT_TRUE(cache.DemoteToFlash(2, 0).ok());
  EXPECT_EQ(cache.Find(2)->chunk(0).location, ChunkLocation::kSsd);
  ASSERT_TRUE(cache.PromoteFromFlash(2, 0).ok());
  ASSERT_TRUE(cache.SwapIn(2, 0).ok());
  // The promoted copy lands on a fresh private block.
  EXPECT_NE(cache.Find(2)->chunk(0).gpu_block, published[0]);
  EXPECT_EQ(cache.Find(1)->chunk(0).gpu_block, published[0]);
  EXPECT_TRUE(cache.prefix_trie().ContainsBlock(published[0]));
  cache.CheckInvariants();
  cache.Release(1);
  cache.Release(2);
}

TEST(PrefixSharingCacheTest, CorruptedPrivateCopyDegradesOnlyThatReader) {
  TwoTierKvCache cache(SharedConfig());
  ASSERT_TRUE(cache.AppendTokenSlots(1, 4, nullptr).ok());
  std::vector<BlockId> published = cache.GpuBlockTable(1);
  cache.PublishSharedPrefix({11}, published);
  cache.AttachSharedPrefix(2, published, 4);

  // A fault poisons reader 2's swapped-out CPU copy. Only reader 2 pays:
  // its swap-in fails with DATA_LOSS (degrading to recomputation), while
  // the publisher's data and a third reader's attach stay intact.
  ASSERT_TRUE(cache.SwapOut(2, 0).ok());
  ASSERT_TRUE(cache.ReclaimGpu(2, 0).ok());
  ASSERT_TRUE(cache.MarkCpuCorrupt(2, 0).ok());
  EXPECT_EQ(cache.VerifyCpuChecksum(2, 0).code(), StatusCode::kDataLoss);
  EXPECT_EQ(cache.SwapIn(2, 0).code(), StatusCode::kDataLoss);
  EXPECT_EQ(cache.Find(2)->chunk(0).location, ChunkLocation::kCpu);

  ASSERT_TRUE(cache.SwapOut(1, 0).ok());
  EXPECT_TRUE(cache.VerifyCpuChecksum(1, 0).ok());
  std::vector<BlockId> matched;
  ASSERT_EQ(cache.LookupSharedPrefix({11}, &matched), 1);
  EXPECT_EQ(cache.AttachSharedPrefix(3, matched, 4), 4);
  EXPECT_EQ(cache.Find(3)->TokensOnGpu(), 4);
  cache.CheckInvariants();
  cache.Release(1);
  cache.Release(2);
  cache.Release(3);
}

TEST(PrefixSharingCacheTest, SharingApiInertWhenDisabled) {
  KvCacheConfig config = SharedConfig();
  config.enable_prefix_sharing = false;
  TwoTierKvCache cache(config);
  ASSERT_TRUE(cache.AppendTokenSlots(1, 8, nullptr).ok());
  EXPECT_EQ(cache.PublishSharedPrefix({11, 22}, cache.GpuBlockTable(1)), 0);
  std::vector<BlockId> matched;
  EXPECT_EQ(cache.LookupSharedPrefix({11, 22}, &matched), 0);
  EXPECT_EQ(cache.ReattachDroppedShared(1, 0, 0).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(cache.prefix_trie().size(), 0);
  // Append demand degenerates to plain chunk demand (no CoW surcharge).
  EXPECT_EQ(cache.AppendBlockDemand(1, 1),
            cache.Find(1)->NumNewChunksForAppend(1));
  cache.Release(1);
}

// --- Engine-level template attach / publish ----------------------------------

GpuCostModel Opt13BModel() {
  return GpuCostModel(Opt13BConfig(), A100Spec(1));
}

Request MakeTemplateRequest(int64_t id, int64_t conv, int64_t prompt,
                            int64_t output, int32_t template_id,
                            int64_t template_prefix_len, double arrival = 0.0) {
  Request r;
  r.request_id = id;
  r.conversation_id = conv;
  r.turn_index = 0;
  r.new_prompt_len = prompt;
  r.history_len = 0;
  r.target_output_len = output;
  r.arrival_time = arrival;
  r.template_id = template_id;
  r.template_prefix_len = template_prefix_len;
  return r;
}

PensieveEngineOptions SharingOptions(int64_t gpu_blocks = 64) {
  PensieveEngineOptions o;
  o.block_size = 32;
  o.num_gpu_blocks = gpu_blocks;
  o.num_cpu_blocks = 256;
  o.max_batch_tokens = 4096;
  return o;
}

std::vector<RequestOutcome> Drain(Engine* engine, double start = 0.0) {
  std::vector<RequestOutcome> outcomes;
  double now = start;
  for (int64_t i = 0; i < 100000 && engine->HasWork(); ++i) {
    StepResult r = engine->Step(now);
    EXPECT_FALSE(r.idle) << "engine idled with pending work";
    if (r.idle) {
      break;
    }
    now += r.duration;
    for (auto& o : r.finished) {
      outcomes.push_back(std::move(o));
    }
  }
  return outcomes;
}

TEST(PrefixSharingEngineTest, SecondConversationAttachesPublishedTemplate) {
  GpuCostModel model = Opt13BModel();
  PensieveEngine engine(model, SharingOptions());
  // Conversation 0 prefills the template the hard way and publishes its
  // three full blocks (96 tokens) at the prefilled transition.
  engine.Enqueue(MakeTemplateRequest(0, 0, 100, 5, /*template_id=*/9,
                                     /*template_prefix_len=*/96),
                 0.0);
  std::vector<RequestOutcome> first = Drain(&engine);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].reused_shared_tokens, 0);
  EXPECT_EQ(first[0].prefill_input_tokens, 100);
  EXPECT_EQ(engine.cache().prefix_trie().size(), 3);

  // Conversation 1 shares the same template: its 96 prefix tokens attach as
  // views, so only the 4 private prompt tokens prefill.
  engine.Enqueue(MakeTemplateRequest(1, 1, 100, 5, 9, 96, 10.0), 10.0);
  std::vector<RequestOutcome> second = Drain(&engine, 10.0);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].reused_shared_tokens, 96);
  EXPECT_EQ(second[0].prefill_input_tokens, 4);
  const EngineStats& stats = engine.stats();
  EXPECT_EQ(stats.dedup_hit_requests, 1);
  EXPECT_EQ(stats.reused_shared_tokens, 96);
  EXPECT_EQ(stats.shared_attached_chunks, 3);
  EXPECT_GE(stats.peak_shared_blocks, 3);
  engine.cache().CheckInvariants();
}

TEST(PrefixSharingEngineTest, DivergenceInsideSharedBlockTriggersCow) {
  GpuCostModel model = Opt13BModel();
  PensieveEngine engine(model, SharingOptions());
  engine.Enqueue(MakeTemplateRequest(0, 0, 100, 5, 9, 96), 0.0);
  Drain(&engine);
  // Prompt 40 < prefix 96: the attach span caps at 39 tokens (one must stay
  // pending), so block 0 attaches full and block 1 as a 7-token partial
  // view. Prefilling the pending token writes into that partial view and
  // must copy-on-write instead of corrupting the publisher's block.
  engine.Enqueue(MakeTemplateRequest(1, 1, 40, 5, 9, 96, 10.0), 10.0);
  std::vector<RequestOutcome> outcomes = Drain(&engine, 10.0);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].reused_shared_tokens, 39);
  EXPECT_EQ(engine.stats().cow_copies, 1);
  engine.cache().CheckInvariants();
  engine.cache().VerifyNoLeaks();
}

TEST(PrefixSharingEngineTest, SharingDisabledNeverTouchesTrie) {
  GpuCostModel model = Opt13BModel();
  PensieveEngineOptions options = SharingOptions();
  options.enable_prefix_sharing = false;
  PensieveEngine engine(model, options);
  engine.Enqueue(MakeTemplateRequest(0, 0, 100, 5, 9, 96), 0.0);
  Drain(&engine);
  engine.Enqueue(MakeTemplateRequest(1, 1, 100, 5, 9, 96, 10.0), 10.0);
  std::vector<RequestOutcome> outcomes = Drain(&engine, 10.0);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].reused_shared_tokens, 0);
  EXPECT_EQ(outcomes[0].prefill_input_tokens, 100);
  EXPECT_EQ(engine.stats().dedup_hit_requests, 0);
  EXPECT_EQ(engine.cache().prefix_trie().size(), 0);
}

TEST(PrefixSharingEngineTest, RefcountLedgerBalancedAcrossManyTemplates) {
  GpuCostModel model = Opt13BModel();
  PensieveEngine engine(model, SharingOptions(/*gpu_blocks=*/128));
  int64_t id = 0;
  // First wave: one publisher per template.
  for (int64_t conv = 0; conv < 3; ++conv) {
    engine.Enqueue(MakeTemplateRequest(id++, conv, 80, 4,
                                       static_cast<int32_t>(conv), 64,
                                       0.05 * static_cast<double>(conv)),
                   0.0);
  }
  std::vector<RequestOutcome> outcomes = Drain(&engine);
  // Second wave: nine readers across the three published templates.
  for (int64_t conv = 3; conv < 12; ++conv) {
    engine.Enqueue(MakeTemplateRequest(id++, conv, 80, 4,
                                       static_cast<int32_t>(conv % 3), 64,
                                       10.0 + 0.05 * static_cast<double>(conv)),
                   10.0);
  }
  std::vector<RequestOutcome> second = Drain(&engine, 10.0);
  outcomes.insert(outcomes.end(), second.begin(), second.end());
  EXPECT_EQ(outcomes.size(), 12u);
  const EngineStats& stats = engine.stats();
  EXPECT_EQ(stats.dedup_hit_requests, 9);
  EXPECT_EQ(stats.reused_shared_tokens, 9 * 64);
  // Every acquire is balanced by a release or a live chunk view.
  EXPECT_EQ(stats.kv_block_acquires, stats.kv_block_releases + stats.kv_blocks_live);
  engine.cache().CheckInvariants();
  engine.cache().VerifyNoLeaks();
}

// --- Hash-chain determinism ---------------------------------------------------

TEST(TemplatePrefixMixTest, DeterministicAndTemplateSensitive) {
  EXPECT_EQ(TemplatePrefixMix(3, 17), TemplatePrefixMix(3, 17));
  EXPECT_NE(TemplatePrefixMix(3, 17), TemplatePrefixMix(4, 17));
  EXPECT_NE(TemplatePrefixMix(3, 17), TemplatePrefixMix(3, 18));
}

}  // namespace
}  // namespace pensieve

// Edge-case tests for the Pensieve engine: forgotten conversations, token
// budgets, restore-stall ablations, and swap-in priority.

#include <gtest/gtest.h>

#include "src/model/model_config.h"
#include "src/serving/pensieve_engine.h"
#include "src/sim/hardware.h"

namespace pensieve {
namespace {

GpuCostModel Opt13BModel() {
  return GpuCostModel(Opt13BConfig(), A100Spec(1));
}

Request MakeRequest(int64_t id, int64_t conv, int32_t turn, int64_t prompt,
                    int64_t history, int64_t output, double arrival = 0.0) {
  Request r;
  r.request_id = id;
  r.conversation_id = conv;
  r.turn_index = turn;
  r.new_prompt_len = prompt;
  r.history_len = history;
  r.target_output_len = output;
  r.arrival_time = arrival;
  return r;
}

PensieveEngineOptions SmallOptions(int64_t gpu_blocks = 64, int64_t cpu_blocks = 256) {
  PensieveEngineOptions o;
  o.block_size = 32;
  o.num_gpu_blocks = gpu_blocks;
  o.num_cpu_blocks = cpu_blocks;
  return o;
}

std::vector<RequestOutcome> Drain(Engine* engine, double start = 0.0) {
  std::vector<RequestOutcome> outcomes;
  double now = start;
  for (int64_t i = 0; i < 100000 && engine->HasWork(); ++i) {
    StepResult r = engine->Step(now);
    EXPECT_FALSE(r.idle);
    if (r.idle) {
      break;
    }
    now += r.duration;
    for (auto& o : r.finished) {
      outcomes.push_back(std::move(o));
    }
  }
  return outcomes;
}

TEST(PensieveEngineEdgeTest, ForgottenConversationRecomputesFullHistory) {
  GpuCostModel model = Opt13BModel();
  // GPU-only with a tiny cache: conversation 0's state will be fully
  // dropped (and its bookkeeping forgotten) under pressure from
  // conversation 1.
  PensieveEngineOptions options = SmallOptions(/*gpu_blocks=*/8, /*cpu_blocks=*/0);
  options.use_cpu_cache = false;
  PensieveEngine engine(model, options);
  engine.Enqueue(MakeRequest(0, 0, 0, 60, 0, 5), 0.0);
  Drain(&engine);
  // Conversation 1 needs (almost) the whole GPU: conversation 0 is evicted
  // entirely and forgotten.
  engine.Enqueue(MakeRequest(1, 1, 0, 200, 0, 20, 5.0), 5.0);
  Drain(&engine, 5.0);
  EXPECT_EQ(engine.cache().Find(0), nullptr) << "conversation 0 should be forgotten";
  // Conversation 0's second turn: its entire 65-token raw history re-enters
  // as input and is recomputed.
  engine.Enqueue(MakeRequest(2, 0, 1, 10, 65, 5, 10.0), 10.0);
  std::vector<RequestOutcome> outcomes = Drain(&engine, 10.0);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].reused_gpu_tokens, 0);
  EXPECT_EQ(outcomes[0].recomputed_tokens, 64);  // 65 minus the pending token
  engine.cache().CheckInvariants();
}

TEST(PensieveEngineEdgeTest, TokenBudgetLimitsAdmissionsPerStep) {
  GpuCostModel model = Opt13BModel();
  PensieveEngineOptions options = SmallOptions(256, 256);
  options.max_batch_tokens = 100;
  PensieveEngine engine(model, options);
  engine.Enqueue(MakeRequest(0, 0, 0, 80, 0, 3), 0.0);
  engine.Enqueue(MakeRequest(1, 1, 0, 80, 0, 3, 0.1), 0.1);
  engine.Step(0.1);
  // The second prefill (80 tokens) would blow the 100-token budget.
  EXPECT_EQ(engine.num_running(), 1);
  EXPECT_EQ(engine.num_waiting(), 1);
  // Next step: request 0 is decoding (1 token), so request 1 fits.
  engine.Step(0.2);
  EXPECT_EQ(engine.num_running(), 2);
}

TEST(PensieveEngineEdgeTest, OversizedPromptAdmittedAloneDespiteBudget) {
  GpuCostModel model = Opt13BModel();
  PensieveEngineOptions options = SmallOptions(256, 256);
  options.max_batch_tokens = 100;
  PensieveEngine engine(model, options);
  engine.Enqueue(MakeRequest(0, 0, 0, 500, 0, 3), 0.0);
  std::vector<RequestOutcome> outcomes = Drain(&engine);
  EXPECT_EQ(outcomes.size(), 1u);
}

TEST(PensieveEngineEdgeTest, BlockingRestoreSlowerThanPipelined) {
  GpuCostModel model = Opt13BModel();
  auto run = [&](bool pipelined) {
    PensieveEngineOptions options = SmallOptions(/*gpu_blocks=*/8, /*cpu_blocks=*/64);
    options.pipelined_restore = pipelined;
    PensieveEngine engine(model, options);
    // Build up a cached conversation, push it to CPU via pressure, return.
    engine.Enqueue(MakeRequest(0, 0, 0, 200, 0, 10), 0.0);
    Drain(&engine);
    engine.Enqueue(MakeRequest(1, 1, 0, 200, 0, 10, 10.0), 10.0);
    Drain(&engine, 10.0);
    engine.Enqueue(MakeRequest(2, 0, 1, 30, 210, 5, 20.0), 20.0);
    Drain(&engine, 20.0);
    return engine.stats().restore_stall_seconds;
  };
  const double pipelined_stall = run(true);
  const double blocking_stall = run(false);
  EXPECT_LE(pipelined_stall, blocking_stall);
}

TEST(PensieveEngineEdgeTest, SuspensionBeforePrefillRedropsRestoredChunks) {
  GpuCostModel model = Opt13BModel();
  // Tight GPU, no CPU: conversation 0's history is dropped, then at its
  // second turn the restored chunks compete with a running request and may
  // force suspension. The engine must not leave garbage "resident" chunks.
  PensieveEngineOptions options = SmallOptions(/*gpu_blocks=*/6, /*cpu_blocks=*/0);
  options.use_cpu_cache = false;
  options.decode_reserve = 0.0;
  PensieveEngine engine(model, options);
  engine.Enqueue(MakeRequest(0, 0, 0, 100, 0, 60, 0.0), 0.0);
  engine.Enqueue(MakeRequest(1, 1, 0, 60, 0, 60, 0.1), 0.1);
  std::vector<RequestOutcome> outcomes = Drain(&engine);
  EXPECT_EQ(outcomes.size(), 2u);
  engine.cache().CheckInvariants();
}

TEST(PensieveEngineEdgeTest, SwapInPriorityReducesRestoreStall) {
  GpuCostModel model = Opt13BModel();
  auto run = [&](bool prioritize) {
    PensieveEngineOptions options = SmallOptions(/*gpu_blocks=*/10, /*cpu_blocks=*/64);
    options.prioritize_swap_in = prioritize;
    options.swap_out_threshold = 0.5;  // heavy eviction traffic
    PensieveEngine engine(model, options);
    double now = 0.0;
    int64_t id = 0;
    // Alternate two conversations so each return swaps the other out.
    for (int turn = 0; turn < 4; ++turn) {
      for (int64_t conv = 0; conv < 2; ++conv) {
        const int64_t history = turn == 0 ? 0 : turn * (150 + 10);
        engine.Enqueue(MakeRequest(id++, conv, turn, 150, history, 10, now), now);
        for (int64_t i = 0; i < 100000 && engine.HasWork(); ++i) {
          StepResult r = engine.Step(now);
          if (r.idle) {
            break;
          }
          now += r.duration;
        }
      }
    }
    return engine.stats().restore_stall_seconds;
  };
  // The §5 waiting mechanism must never make restores slower.
  EXPECT_LE(run(true), run(false) + 1e-9);
}

TEST(PensieveEngineEdgeTest, StatsAccumulateAcrossManyTurns) {
  GpuCostModel model = Opt13BModel();
  PensieveEngine engine(model, SmallOptions());
  double now = 0.0;
  int64_t history = 0;
  for (int32_t turn = 0; turn < 5; ++turn) {
    engine.Enqueue(MakeRequest(turn, 0, turn, 20, history, 10, now), now);
    std::vector<RequestOutcome> outcomes = Drain(&engine, now);
    ASSERT_EQ(outcomes.size(), 1u);
    now = outcomes[0].finish_time + 30.0;
    history += 30;
  }
  const EngineStats& stats = engine.stats();
  EXPECT_EQ(stats.generated_tokens, 50);
  // Turns 1-4 each reused history-1 tokens from the GPU.
  EXPECT_EQ(stats.reused_gpu_tokens, 29 + 59 + 89 + 119);
  EXPECT_EQ(stats.recomputed_history_tokens, 0);
  EXPECT_DOUBLE_EQ(stats.CacheHitRate(), 1.0);
}

}  // namespace
}  // namespace pensieve

// Tests for the elastic replica set (DESIGN.md §14): the health-probe state
// machine, the autoscaler's hysteresis, router behavior around quarantined
// replicas, and the cluster driver's drain / scale / peer-spill lifecycles —
// including the no-dropped-request contract under every degradation.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/cluster/cluster_driver.h"
#include "src/cluster/elastic.h"
#include "src/cluster/router.h"
#include "src/core/experiment.h"
#include "src/model/model_config.h"
#include "src/sim/hardware.h"
#include "src/workload/trace.h"

namespace pensieve {
namespace {

GpuCostModel Opt13BModel() {
  return GpuCostModel(Opt13BConfig(), A100Spec(1));
}

WorkloadTrace SmallTrace(int64_t conversations = 30, double rate = 2.0,
                         double think = 2.0, uint64_t seed = 5) {
  TraceOptions options;
  options.num_conversations = conversations;
  options.conversation_rate = rate;
  options.mean_think_time = think;
  options.seed = seed;
  return WorkloadTrace(ShareGptProfile(), options);
}

ReplicaEngineFactory PensieveFactory(const GpuCostModel& model) {
  return [&model](int32_t) { return MakeEngine(SystemKind::kPensieve, model); };
}

void ExpectNoDropAndIdentities(const ClusterSummary& s, int64_t expected) {
  EXPECT_EQ(s.cluster.completed_requests, expected);
  const HealthStats& h = s.elastic.health;
  EXPECT_EQ(h.probes_sent, h.probes_ok + h.probes_failed);
  const PeerSpillStats& p = s.elastic.peer_spill;
  EXPECT_EQ(p.spilled_tokens, p.fetched_tokens + p.degraded_tokens +
                                  p.invalidated_tokens + p.remaining_tokens);
}

// --- HealthMonitor state machine --------------------------------------------

HealthOptions ProbeOptions() {
  HealthOptions options;
  options.enabled = true;
  options.suspect_after = 2;
  options.quarantine_after = 4;
  options.healthy_after = 3;
  return options;
}

TEST(HealthMonitorTest, ConsecutiveFailuresWalkTheStateMachine) {
  HealthMonitor monitor(1, ProbeOptions());
  EXPECT_EQ(monitor.health(0), ReplicaHealth::kHealthy);
  EXPECT_EQ(monitor.RecordProbe(0, false), HealthMonitor::Transition::kNone);
  EXPECT_EQ(monitor.RecordProbe(0, false), HealthMonitor::Transition::kSuspect);
  EXPECT_EQ(monitor.health(0), ReplicaHealth::kSuspect);
  EXPECT_EQ(monitor.RecordProbe(0, false), HealthMonitor::Transition::kNone);
  EXPECT_EQ(monitor.RecordProbe(0, false),
            HealthMonitor::Transition::kQuarantine);
  EXPECT_TRUE(monitor.Quarantined(0));
  // Recovery needs healthy_after consecutive successes.
  EXPECT_EQ(monitor.RecordProbe(0, true), HealthMonitor::Transition::kNone);
  EXPECT_EQ(monitor.RecordProbe(0, true), HealthMonitor::Transition::kNone);
  EXPECT_EQ(monitor.RecordProbe(0, true),
            HealthMonitor::Transition::kReinstate);
  EXPECT_EQ(monitor.health(0), ReplicaHealth::kHealthy);
  EXPECT_EQ(monitor.stats().suspects, 1);
  EXPECT_EQ(monitor.stats().quarantines, 1);
  EXPECT_EQ(monitor.stats().reinstatements, 1);
}

TEST(HealthMonitorTest, SuspectRecoversSilently) {
  HealthMonitor monitor(1, ProbeOptions());
  monitor.RecordProbe(0, false);
  monitor.RecordProbe(0, false);
  ASSERT_EQ(monitor.health(0), ReplicaHealth::kSuspect);
  // healthy_after consecutive successes recover a suspect without a formal
  // transition: it never left the dispatch set.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(monitor.RecordProbe(0, true), HealthMonitor::Transition::kNone);
  }
  EXPECT_EQ(monitor.health(0), ReplicaHealth::kHealthy);
  EXPECT_EQ(monitor.stats().reinstatements, 0);
}

TEST(HealthMonitorTest, FailureStreakInterruptedBySuccessRestarts) {
  HealthMonitor monitor(1, ProbeOptions());
  for (int i = 0; i < 3; ++i) {
    monitor.RecordProbe(0, false);
  }
  ASSERT_EQ(monitor.health(0), ReplicaHealth::kSuspect);
  monitor.RecordProbe(0, true);
  // The success restarted the failure streak: three more failures keep the
  // replica suspect (quarantine needs four consecutive), and only the
  // fourth quarantines it.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(monitor.RecordProbe(0, false), HealthMonitor::Transition::kNone);
  }
  EXPECT_EQ(monitor.health(0), ReplicaHealth::kSuspect);
  EXPECT_EQ(monitor.RecordProbe(0, false),
            HealthMonitor::Transition::kQuarantine);
}

TEST(HealthMonitorTest, ResetClearsSlotAndKeepsCounters) {
  HealthMonitor monitor(2, ProbeOptions());
  for (int i = 0; i < 4; ++i) {
    monitor.RecordProbe(1, false);
  }
  ASSERT_TRUE(monitor.Quarantined(1));
  monitor.Reset(1);
  EXPECT_EQ(monitor.health(1), ReplicaHealth::kHealthy);
  EXPECT_EQ(monitor.stats().quarantines, 1);  // history survives the reset
}

TEST(HealthMonitorTest, ProbeAccountingIdentity) {
  HealthMonitor monitor(1, ProbeOptions());
  for (int i = 0; i < 7; ++i) {
    monitor.RecordProbe(0, i % 2 == 0);
  }
  const HealthStats& stats = monitor.stats();
  EXPECT_EQ(stats.probes_sent, 7);
  EXPECT_EQ(stats.probes_sent, stats.probes_ok + stats.probes_failed);
}

TEST(HealthMonitorTest, SickWindowCoversHalfOpenInterval) {
  HealthOptions options = ProbeOptions();
  options.sick.push_back({0, 10.0, 20.0});
  HealthMonitor monitor(2, options);
  EXPECT_FALSE(monitor.InSickWindow(0, 9.9));
  EXPECT_TRUE(monitor.InSickWindow(0, 10.0));
  EXPECT_TRUE(monitor.InSickWindow(0, 19.9));
  EXPECT_FALSE(monitor.InSickWindow(0, 20.0));
  EXPECT_FALSE(monitor.InSickWindow(1, 15.0));
}

// --- Autoscaler policy ------------------------------------------------------

AutoscaleOptions ScaleOptions() {
  AutoscaleOptions options;
  options.enabled = true;
  options.min_replicas = 1;
  options.max_replicas = 4;
  options.cooldown = 10.0;
  options.up_queue_tokens = 1000;
  options.down_queue_tokens = 100;
  return options;
}

TEST(AutoscalerTest, QueueDepthSignalScalesBothDirections) {
  Autoscaler scaler(ScaleOptions());
  // 2 active, 4000 outstanding -> 2000/replica, above the up threshold.
  EXPECT_EQ(scaler.Decide(100.0, 4000, 2), Autoscaler::Decision::kUp);
  // 2 active, 100 outstanding -> 50/replica, below the down threshold.
  EXPECT_EQ(scaler.Decide(100.0, 100, 2), Autoscaler::Decision::kDown);
  // In the hysteresis band: hold.
  EXPECT_EQ(scaler.Decide(100.0, 1000, 2), Autoscaler::Decision::kHold);
}

TEST(AutoscalerTest, CooldownSuppressesBackToBackScaling) {
  Autoscaler scaler(ScaleOptions());
  ASSERT_EQ(scaler.Decide(100.0, 8000, 2), Autoscaler::Decision::kUp);
  scaler.NoteScaled(100.0);
  EXPECT_EQ(scaler.Decide(105.0, 8000, 3), Autoscaler::Decision::kHold);
  EXPECT_EQ(scaler.Decide(110.5, 8000, 3), Autoscaler::Decision::kUp);
}

TEST(AutoscalerTest, RespectsMinAndMaxBounds) {
  Autoscaler scaler(ScaleOptions());
  EXPECT_EQ(scaler.Decide(100.0, 100000, 4), Autoscaler::Decision::kHold);
  EXPECT_EQ(scaler.Decide(100.0, 0, 1), Autoscaler::Decision::kHold);
}

TEST(AutoscalerTest, HotLatencySignalForcesUpAndBlocksDown) {
  AutoscaleOptions options = ScaleOptions();
  options.up_p99_latency = 0.050;
  options.latency_window = 8;
  Autoscaler scaler(options);
  for (int i = 0; i < 8; ++i) {
    scaler.RecordFinish(0.2);  // way over the 50 ms/token target
  }
  EXPECT_GT(scaler.RecentP99(), options.up_p99_latency);
  // Queue depth alone says shrink; the hot latency signal overrides to grow.
  EXPECT_EQ(scaler.Decide(100.0, 0, 2), Autoscaler::Decision::kUp);
}

// --- Routers skip quarantined replicas --------------------------------------

struct RouterRig {
  explicit RouterRig(int32_t n) {
    for (int32_t i = 0; i < n; ++i) {
      engines.push_back(MakeEngine(SystemKind::kPensieve, model));
      ReplicaView view;
      view.engine = engines.back().get();
      view.alive = true;
      views.push_back(view);
    }
  }
  GpuCostModel model = Opt13BModel();
  std::vector<std::unique_ptr<Engine>> engines;
  std::vector<ReplicaView> views;
};

Request FreshTurn(int64_t conv, int64_t prompt) {
  Request r;
  r.request_id = conv;
  r.conversation_id = conv;
  r.new_prompt_len = prompt;
  r.target_output_len = 16;
  return r;
}

TEST(QuarantineRoutingTest, RoundRobinSkipsQuarantinedReplica) {
  RouterRig rig(3);
  rig.views[1].dispatchable = false;
  RouterOptions options;
  options.policy = RouterPolicy::kRoundRobin;
  auto router = MakeRouter(options);
  for (int i = 0; i < 9; ++i) {
    EXPECT_NE(router->Route(FreshTurn(i, 50), rig.views).target, 1);
  }
}

TEST(QuarantineRoutingTest, LeastLoadedSkipsIdleQuarantinedReplica) {
  RouterRig rig(3);
  // Replica 1 looks emptiest — but it is quarantined.
  rig.views[0].load.outstanding_output_tokens = 500;
  rig.views[2].load.outstanding_output_tokens = 800;
  rig.views[1].dispatchable = false;
  RouterOptions options;
  options.policy = RouterPolicy::kLeastLoaded;
  auto router = MakeRouter(options);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(router->Route(FreshTurn(i, 50), rig.views).target, 0);
  }
}

TEST(QuarantineRoutingTest, AffinityRehomesOffQuarantinedHome) {
  RouterRig rig(3);
  RouterOptions options;
  options.policy = RouterPolicy::kSessionAffinity;
  auto router = MakeRouter(options);
  const Request turn = FreshTurn(7, 50);
  const int32_t home = router->Route(turn, rig.views).target;
  rig.views[static_cast<size_t>(home)].dispatchable = false;
  const RoutingDecision moved = router->Route(turn, rig.views);
  EXPECT_NE(moved.target, home);
}

TEST(QuarantineRoutingTest, DisaggSkipsQuarantinedPrefillAndDecode) {
  RouterRig rig(4);
  DisaggRouterConfig config;
  config.prefill_replicas = 2;
  config.min_handoff_tokens = 100;
  auto router = MakeDisaggRouter(config);
  // Prefill replica 0 quarantined: large turns go to prefill replica 1.
  rig.views[0].dispatchable = false;
  for (int i = 0; i < 3; ++i) {
    const RoutingDecision d = router->Route(FreshTurn(i, 500), rig.views);
    ASSERT_TRUE(d.prefill_handoff);
    EXPECT_EQ(d.target, 1);
  }
  rig.views[0].dispatchable = true;
  // Decode home quarantined: the continuation re-homes to the other decode.
  Request cont = FreshTurn(9, 1);
  cont.handoff_continuation = true;
  const int32_t home = router->Route(cont, rig.views).target;
  ASSERT_GE(home, 2);
  rig.views[static_cast<size_t>(home)].dispatchable = false;
  const RoutingDecision moved = router->Route(cont, rig.views);
  EXPECT_NE(moved.target, home);
  EXPECT_GE(moved.target, 2);
}

// --- Cluster lifecycles -----------------------------------------------------

TEST(ElasticClusterTest, FaultFreeProbingIsInvisibleToServing) {
  const GpuCostModel model = Opt13BModel();
  const WorkloadTrace trace = SmallTrace();

  ClusterOptions plain;
  plain.num_replicas = 3;
  const ClusterSummary base =
      RunClusterExperiment(PensieveFactory(model), trace, plain);

  ClusterOptions probed = plain;
  probed.elastic.health.enabled = true;
  probed.elastic.health.probe_interval = 0.5;
  const ClusterSummary with_probes =
      RunClusterExperiment(PensieveFactory(model), trace, probed);

  // Probes are control-plane traffic: same completions, same virtual-time
  // serving metrics, bit for bit.
  EXPECT_EQ(with_probes.cluster.completed_requests,
            base.cluster.completed_requests);
  EXPECT_DOUBLE_EQ(with_probes.cluster.makespan, base.cluster.makespan);
  EXPECT_EQ(with_probes.cluster.engine_stats.generated_tokens,
            base.cluster.engine_stats.generated_tokens);
  EXPECT_DOUBLE_EQ(with_probes.cluster.engine_stats.busy_seconds,
                   base.cluster.engine_stats.busy_seconds);
  EXPECT_EQ(with_probes.cluster.engine_stats.recomputed_history_tokens,
            base.cluster.engine_stats.recomputed_history_tokens);
  EXPECT_GT(with_probes.elastic.health.probes_sent, 0);
  EXPECT_EQ(with_probes.elastic.health.probes_failed, 0);
  EXPECT_EQ(with_probes.elastic.health.quarantines, 0);
}

TEST(ElasticClusterTest, SickReplicaIsQuarantinedDrainedAndReinstated) {
  const GpuCostModel model = Opt13BModel();
  const WorkloadTrace trace = SmallTrace(/*conversations=*/40, /*rate=*/3.0);

  ClusterOptions options;
  options.num_replicas = 3;
  options.router.policy = RouterPolicy::kSessionAffinity;
  options.elastic.health.enabled = true;
  options.elastic.health.probe_interval = 0.5;
  options.elastic.health.sick.push_back({1, 5.0, 20.0});
  const ClusterSummary s =
      RunClusterExperiment(PensieveFactory(model), trace, options);

  ExpectNoDropAndIdentities(s, trace.TotalRequests());
  EXPECT_GE(s.elastic.health.quarantines, 1);
  EXPECT_GE(s.elastic.health.reinstatements, 1);
  EXPECT_GE(s.elastic.health.drained_requests, 1);
  EXPECT_EQ(s.faults.failures, 0);  // nobody actually crashed
}

TEST(ElasticClusterTest, QuarantineAheadOfCrashBeatsHardFailOnly) {
  const GpuCostModel model = Opt13BModel();
  const WorkloadTrace trace = SmallTrace(/*conversations=*/40, /*rate=*/3.0);

  ClusterOptions hard;
  hard.num_replicas = 3;
  hard.router.policy = RouterPolicy::kSessionAffinity;
  hard.faults.push_back({25.0, 1, /*recover=*/false});
  const ClusterSummary crash_only =
      RunClusterExperiment(PensieveFactory(model), trace, hard);

  ClusterOptions probed = hard;
  probed.elastic.health.enabled = true;
  probed.elastic.health.probe_interval = 0.5;
  probed.elastic.health.sick.push_back({1, 10.0, 25.0});
  const ClusterSummary with_probes =
      RunClusterExperiment(PensieveFactory(model), trace, probed);

  ExpectNoDropAndIdentities(crash_only, trace.TotalRequests());
  ExpectNoDropAndIdentities(with_probes, trace.TotalRequests());
  EXPECT_GE(with_probes.elastic.health.quarantines, 1);
  // The quarantine drained work ahead of the crash, so the crash found less
  // to destroy.
  EXPECT_LT(with_probes.faults.lost_kv_tokens, crash_only.faults.lost_kv_tokens);
  EXPECT_LE(with_probes.faults.rerouted_requests,
            crash_only.faults.rerouted_requests);
}

TEST(ElasticClusterTest, MidStreamQuarantineDegradesToRecomputeWithoutDrop) {
  const GpuCostModel model = Opt13BModel();
  // Long prompts so turns hand off and streams are regularly in flight.
  DatasetProfile profile;
  profile.name = "prefill-heavy-test";
  profile.mean_turns = 2.0;
  profile.mean_input_len = 900.0;
  profile.input_len_cv = 0.5;
  profile.mean_output_len = 24.0;
  profile.output_len_cv = 0.5;
  TraceOptions trace_options;
  trace_options.num_conversations = 40;
  trace_options.conversation_rate = 3.0;
  trace_options.mean_think_time = 2.0;
  trace_options.seed = 11;
  const WorkloadTrace trace(profile, trace_options);

  ClusterOptions options;
  options.num_replicas = 3;
  options.disagg.enabled = true;
  options.disagg.prefill_replicas = 1;
  options.disagg.min_handoff_tokens = 64;
  options.disagg.stream_layers = 40;
  // A slow NIC keeps streams on the wire for whole virtual seconds, so the
  // quarantine reliably catches some mid-flight.
  options.interconnect.bandwidth = 50e6;
  options.elastic.health.enabled = true;
  options.elastic.health.probe_interval = 0.25;
  // Decode replica 2 turns sick early and stays sick: continuations with
  // streams already in flight toward it must re-route and recompute.
  options.elastic.health.sick.push_back({2, 3.0, 1e9});
  const ClusterSummary s =
      RunClusterExperiment(PensieveFactory(model), trace, options);

  ExpectNoDropAndIdentities(s, trace.TotalRequests());
  EXPECT_GE(s.elastic.health.quarantines, 1);
  EXPECT_GE(s.elastic.health.voided_streams, 1);
  EXPECT_GE(s.handoff.failed_streams, s.elastic.health.voided_streams);
  EXPECT_GT(s.handoff.streams, 0);
}

TEST(ElasticClusterTest, AutoscalerGrowsIntoLoadAndRetiresCleanly) {
  const GpuCostModel model = Opt13BModel();
  const WorkloadTrace trace =
      SmallTrace(/*conversations=*/60, /*rate=*/5.0, /*think=*/2.0);

  ClusterOptions options;
  options.num_replicas = 3;
  options.router.policy = RouterPolicy::kLeastLoaded;
  options.elastic.autoscale.enabled = true;
  options.elastic.autoscale.min_replicas = 1;
  options.elastic.autoscale.max_replicas = 3;
  options.elastic.autoscale.check_interval = 1.0;
  options.elastic.autoscale.cooldown = 4.0;
  options.elastic.autoscale.up_queue_tokens = 1024;
  options.elastic.autoscale.down_queue_tokens = 128;
  const ClusterSummary s =
      RunClusterExperiment(PensieveFactory(model), trace, options);

  ExpectNoDropAndIdentities(s, trace.TotalRequests());
  const AutoscaleStats& a = s.elastic.autoscale;
  EXPECT_GE(a.scale_ups, 1);
  EXPECT_GE(a.scale_downs, 1);
  EXPECT_GT(a.peak_active_replicas, 1);
  EXPECT_GE(a.min_active_replicas, 1);
  for (const ScaleEvent& e : a.events) {
    EXPECT_GE(e.replica_id, 0);
    EXPECT_LT(e.replica_id, 3);
  }
}

TEST(ElasticClusterTest, PeerSpillAccountingIdentityAndFetchback) {
  const GpuCostModel model = Opt13BModel();
  const WorkloadTrace trace =
      SmallTrace(/*conversations=*/40, /*rate=*/4.0, /*think=*/2.0, /*seed=*/21);

  ClusterOptions options;
  options.num_replicas = 3;
  options.router.policy = RouterPolicy::kSessionAffinity;
  options.elastic.peer_spill.enabled = true;
  // Replica 0's CPU tier is starved; its peers have idle budget.
  const ClusterSummary s = RunClusterExperiment(
      [&](int32_t replica_id) {
        EngineOverrides overrides;
        overrides.cache_scale = 0.15;
        overrides.cpu_cache_scale = replica_id == 0 ? 0.15 : 2.0;
        overrides.peer_spill = true;
        return MakeEngine(SystemKind::kPensieve, model, overrides);
      },
      trace, options);

  ExpectNoDropAndIdentities(s, trace.TotalRequests());
  const PeerSpillStats& p = s.elastic.peer_spill;
  EXPECT_GT(p.spills, 0);
  EXPECT_GT(p.spilled_tokens, 0);
  EXPECT_GT(p.fetched_tokens, 0);
  EXPECT_EQ(p.failed_transfers, 0);  // no NIC faults armed
}

TEST(ElasticClusterTest, DeterministicAcrossIdenticalElasticRuns) {
  const GpuCostModel model = Opt13BModel();
  const WorkloadTrace trace = SmallTrace(/*conversations=*/30, /*rate=*/3.0);

  ClusterOptions options;
  options.num_replicas = 3;
  options.elastic.health.enabled = true;
  options.elastic.health.probe_interval = 0.5;
  options.elastic.health.probe_faults.timeout_rate = 0.2;
  options.elastic.health.sick.push_back({1, 5.0, 15.0});
  options.elastic.autoscale.enabled = true;
  options.elastic.autoscale.min_replicas = 2;
  options.elastic.autoscale.max_replicas = 3;
  options.elastic.peer_spill.enabled = true;

  const ClusterSummary a =
      RunClusterExperiment(PensieveFactory(model), trace, options);
  const ClusterSummary b =
      RunClusterExperiment(PensieveFactory(model), trace, options);
  EXPECT_EQ(a.cluster.completed_requests, b.cluster.completed_requests);
  EXPECT_DOUBLE_EQ(a.cluster.makespan, b.cluster.makespan);
  EXPECT_EQ(a.elastic.health.probes_sent, b.elastic.health.probes_sent);
  EXPECT_EQ(a.elastic.health.probes_failed, b.elastic.health.probes_failed);
  EXPECT_EQ(a.elastic.health.quarantines, b.elastic.health.quarantines);
  EXPECT_EQ(a.elastic.autoscale.scale_ups, b.elastic.autoscale.scale_ups);
  EXPECT_EQ(a.elastic.peer_spill.spilled_tokens,
            b.elastic.peer_spill.spilled_tokens);
}

// --- Trace warping ----------------------------------------------------------

TEST(WarpFirstArrivalsTest, MonotoneWarpPreservesOrderAndBodies) {
  WorkloadTrace trace = SmallTrace(/*conversations=*/20);
  std::vector<int64_t> turns_before;
  for (const TraceConversation& c : trace.conversations()) {
    turns_before.push_back(static_cast<int64_t>(c.spec.turns.size()));
  }
  trace.WarpFirstArrivals([](double t) { return t < 5.0 ? t : 5.0 + (t - 5.0) / 4.0; });
  double prev = -1.0;
  for (size_t i = 0; i < trace.conversations().size(); ++i) {
    const TraceConversation& c = trace.conversations()[i];
    EXPECT_GE(c.first_arrival, prev);
    prev = c.first_arrival;
    EXPECT_EQ(static_cast<int64_t>(c.spec.turns.size()), turns_before[i]);
  }
}

}  // namespace
}  // namespace pensieve

// Tests for the stateless baseline engines (vLLM / TensorRT-LLM models).

#include <gtest/gtest.h>

#include "src/model/model_config.h"
#include "src/serving/stateless_engine.h"
#include "src/sim/hardware.h"

namespace pensieve {
namespace {

GpuCostModel Opt13BModel() {
  return GpuCostModel(Opt13BConfig(), A100Spec(1));
}

Request MakeRequest(int64_t id, int64_t conv, int64_t prompt, int64_t history,
                    int64_t output, double arrival = 0.0) {
  Request r;
  r.request_id = id;
  r.conversation_id = conv;
  r.new_prompt_len = prompt;
  r.history_len = history;
  r.target_output_len = output;
  r.arrival_time = arrival;
  return r;
}

StatelessEngineOptions SmallOptions(int64_t blocks = 64) {
  StatelessEngineOptions o;
  o.block_size = 16;
  o.num_gpu_blocks = blocks;
  o.max_batch_tokens = 2048;
  return o;
}

// Runs steps until the engine drains; returns all outcomes.
std::vector<RequestOutcome> Drain(Engine* engine, double start = 0.0,
                                  int64_t max_steps = 100000) {
  std::vector<RequestOutcome> outcomes;
  double now = start;
  for (int64_t i = 0; i < max_steps && engine->HasWork(); ++i) {
    StepResult r = engine->Step(now);
    EXPECT_FALSE(r.idle) << "engine idled with pending work";
    if (r.idle) {
      break;
    }
    now += r.duration;
    for (auto& o : r.finished) {
      outcomes.push_back(std::move(o));
    }
  }
  return outcomes;
}

TEST(StatelessEngineTest, SingleRequestLifecycle) {
  GpuCostModel model = Opt13BModel();
  StatelessEngine engine(model, SmallOptions());
  engine.Enqueue(MakeRequest(0, 0, 50, 0, 10), 0.0);
  EXPECT_TRUE(engine.HasWork());
  std::vector<RequestOutcome> outcomes = Drain(&engine);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].request.request_id, 0);
  EXPECT_GT(outcomes[0].finish_time, 0.0);
  EXPECT_FALSE(engine.HasWork());
  // 10 output tokens: 1 from prefill + 9 decode steps.
  EXPECT_EQ(engine.stats().generated_tokens, 10);
  EXPECT_EQ(engine.stats().steps, 10);
}

TEST(StatelessEngineTest, HistoryIsAlwaysRecomputed) {
  GpuCostModel model = Opt13BModel();
  StatelessEngine engine(model, SmallOptions());
  engine.Enqueue(MakeRequest(0, 0, 40, 300, 5), 0.0);
  std::vector<RequestOutcome> outcomes = Drain(&engine);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].prefill_input_tokens, 340);
  EXPECT_EQ(outcomes[0].recomputed_tokens, 300);
  EXPECT_EQ(engine.stats().recomputed_history_tokens, 300);
}

TEST(StatelessEngineTest, PrefillStepLongerThanDecodeStep) {
  GpuCostModel model = Opt13BModel();
  StatelessEngine engine(model, SmallOptions(512));
  engine.Enqueue(MakeRequest(0, 0, 2000, 0, 3), 0.0);
  StepResult prefill = engine.Step(0.0);
  StepResult decode = engine.Step(prefill.duration);
  EXPECT_GT(prefill.duration, 2.0 * decode.duration);
}

TEST(StatelessEngineTest, BatchesMultipleDecodes) {
  GpuCostModel model = Opt13BModel();
  StatelessEngine engine(model, SmallOptions());
  for (int i = 0; i < 4; ++i) {
    engine.Enqueue(MakeRequest(i, i, 20, 0, 5, 0.1 * i), 0.0);
  }
  // One prefill step admits all four (80 tokens < budget)...
  StepResult first = engine.Step(0.0);
  EXPECT_TRUE(first.finished.empty());
  // ...then 4 decode steps finish them together.
  std::vector<RequestOutcome> outcomes = Drain(&engine, first.duration);
  EXPECT_EQ(outcomes.size(), 4u);
  EXPECT_EQ(engine.stats().steps, 5);
}

TEST(StatelessEngineTest, TokenBudgetSplitsPrefills) {
  GpuCostModel model = Opt13BModel();
  StatelessEngineOptions options = SmallOptions(512);
  options.max_batch_tokens = 1000;
  StatelessEngine engine(model, options);
  engine.Enqueue(MakeRequest(0, 0, 800, 0, 2), 0.0);
  engine.Enqueue(MakeRequest(1, 1, 800, 0, 2), 0.0);
  StepResult first = engine.Step(0.0);  // only request 0 fits
  EXPECT_EQ(engine.stats().prefill_tokens, 800);
  StepResult second = engine.Step(first.duration);  // request 1's prefill
  EXPECT_EQ(engine.stats().prefill_tokens, 1600);
  (void)second;
}

TEST(StatelessEngineTest, OversizedPromptAdmittedAlone) {
  GpuCostModel model = Opt13BModel();
  StatelessEngineOptions options = SmallOptions(512);
  options.max_batch_tokens = 1000;
  StatelessEngine engine(model, options);
  engine.Enqueue(MakeRequest(0, 0, 3000, 0, 2), 0.0);
  std::vector<RequestOutcome> outcomes = Drain(&engine);
  EXPECT_EQ(outcomes.size(), 1u);
}

TEST(StatelessEngineTest, PreemptsUnderMemoryPressure) {
  GpuCostModel model = Opt13BModel();
  // 6 blocks of 16 = 96 token slots: either request fits alone (30 prompt +
  // 40 output = 70), but not both together.
  StatelessEngine engine(model, SmallOptions(6));
  engine.Enqueue(MakeRequest(0, 0, 30, 0, 40, 0.0), 0.0);
  engine.Enqueue(MakeRequest(1, 1, 30, 0, 40, 1.0), 0.0);
  std::vector<RequestOutcome> outcomes = Drain(&engine);
  EXPECT_EQ(outcomes.size(), 2u);
  EXPECT_GT(engine.stats().preemptions, 0);
  // The later-arrived request is the preemption victim.
  for (const RequestOutcome& o : outcomes) {
    if (o.request.request_id == 0) {
      EXPECT_EQ(o.suspensions, 0);
    }
  }
}

TEST(StatelessEngineTest, PreemptAndRetryUnderPoolExhaustion) {
  GpuCostModel model = Opt13BModel();
  // 6 blocks of 16 = 96 slots; each request peaks at 20 + 40 = 60, so no
  // two coexist once decode grows. The pool exhausts mid-decode repeatedly
  // and every victim must be re-admitted (re-prefilling prompt + emitted
  // output) until all three finish.
  StatelessEngine engine(model, SmallOptions(6));
  engine.Enqueue(MakeRequest(0, 0, 20, 0, 40, 0.0), 0.0);
  engine.Enqueue(MakeRequest(1, 1, 20, 0, 40, 1.0), 0.0);
  engine.Enqueue(MakeRequest(2, 2, 20, 0, 40, 2.0), 0.0);
  std::vector<RequestOutcome> outcomes = Drain(&engine);
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_GE(engine.stats().preemptions, 2);
  for (const RequestOutcome& o : outcomes) {
    // Preemption delays a request but never truncates it.
    EXPECT_EQ(o.generated_tokens, 40);
    if (o.request.request_id == 0) {
      // The earliest arrival is never the victim while others are running,
      // and fits alone once they finish.
      EXPECT_EQ(o.suspensions, 0);
    }
  }
  EXPECT_FALSE(engine.HasWork());
  // All pages returned: a fresh request admits without preempting anyone.
  engine.Enqueue(MakeRequest(3, 3, 30, 0, 40, 100.0), 100.0);
  std::vector<RequestOutcome> more = Drain(&engine, 100.0);
  ASSERT_EQ(more.size(), 1u);
  EXPECT_EQ(more[0].suspensions, 0);
}

TEST(StatelessEngineTest, TensorRtSpeedupReducesStepTime) {
  GpuCostModel model = Opt13BModel();
  StatelessEngineOptions vllm_options = SmallOptions(512);
  StatelessEngineOptions trt_options = SmallOptions(512);
  trt_options.dense_speedup = 1.25;
  trt_options.name = "tensorrt-llm";
  StatelessEngine vllm(model, vllm_options);
  StatelessEngine trt(model, trt_options);
  vllm.Enqueue(MakeRequest(0, 0, 4000, 0, 2), 0.0);
  trt.Enqueue(MakeRequest(0, 0, 4000, 0, 2), 0.0);
  StepResult v = vllm.Step(0.0);
  StepResult t = trt.Step(0.0);
  EXPECT_LT(t.duration, v.duration);
  EXPECT_EQ(trt.name(), "tensorrt-llm");
}

TEST(StatelessEngineTest, FreesAllMemoryOnFinish) {
  GpuCostModel model = Opt13BModel();
  StatelessEngine engine(model, SmallOptions(64));
  engine.Enqueue(MakeRequest(0, 0, 100, 200, 8), 0.0);
  Drain(&engine);
  // Stateless: nothing retained after completion.
  engine.Enqueue(MakeRequest(1, 0, 100, 308, 8), 10.0);
  std::vector<RequestOutcome> outcomes = Drain(&engine, 10.0);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].recomputed_tokens, 308);
}

TEST(StatelessEngineTest, NormalizedLatencyComputedPerToken) {
  GpuCostModel model = Opt13BModel();
  StatelessEngine engine(model, SmallOptions());
  engine.Enqueue(MakeRequest(0, 0, 10, 0, 20, 5.0), 5.0);
  std::vector<RequestOutcome> outcomes = Drain(&engine, 5.0);
  ASSERT_EQ(outcomes.size(), 1u);
  const double norm = outcomes[0].NormalizedLatency();
  EXPECT_NEAR(norm, (outcomes[0].finish_time - 5.0) / 20.0, 1e-12);
}

}  // namespace
}  // namespace pensieve

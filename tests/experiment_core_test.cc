// Tests for the shared experiment core: event-queue ordering, the
// steady-state window edge cases, replay determinism, and a golden summary
// pinning the refactored single-engine driver to its pre-refactor output.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/core/experiment.h"
#include "src/model/model_config.h"
#include "src/serving/driver.h"
#include "src/serving/experiment_core.h"
#include "src/sim/event_loop.h"
#include "src/sim/hardware.h"
#include "src/workload/trace.h"

namespace pensieve {
namespace {

SimEvent MakeEvent(double time, SimEventKind kind, int64_t id) {
  SimEvent event;
  event.time = time;
  event.kind = kind;
  event.id = id;
  return event;
}

TEST(EventQueueTest, OrdersByTime) {
  EventQueue queue;
  queue.Push(MakeEvent(3.0, SimEventKind::kArrival, 0));
  queue.Push(MakeEvent(1.0, SimEventKind::kArrival, 1));
  queue.Push(MakeEvent(2.0, SimEventKind::kArrival, 2));
  EXPECT_DOUBLE_EQ(queue.NextTime(), 1.0);
  EXPECT_EQ(queue.Pop().id, 1);
  EXPECT_EQ(queue.Pop().id, 2);
  EXPECT_EQ(queue.Pop().id, 0);
  EXPECT_TRUE(queue.Empty());
  EXPECT_TRUE(std::isinf(queue.NextTime()));
}

TEST(EventQueueTest, TieBreaksArrivalBeforeFailBeforeRecover) {
  // At an exact time tie, arrivals must pop before failures and failures
  // before recoveries, regardless of push order.
  EventQueue queue;
  queue.Push(MakeEvent(5.0, SimEventKind::kReplicaRecover, 0));
  queue.Push(MakeEvent(5.0, SimEventKind::kReplicaFail, 0));
  queue.Push(MakeEvent(5.0, SimEventKind::kArrival, 7));
  EXPECT_EQ(queue.Pop().kind, SimEventKind::kArrival);
  EXPECT_EQ(queue.Pop().kind, SimEventKind::kReplicaFail);
  EXPECT_EQ(queue.Pop().kind, SimEventKind::kReplicaRecover);
}

TEST(EventQueueTest, SameKindSameTimePopsInPushOrder) {
  EventQueue queue;
  for (int64_t i = 0; i < 5; ++i) {
    queue.Push(MakeEvent(1.0, SimEventKind::kArrival, i));
  }
  for (int64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(queue.Pop().id, i);
  }
}

TEST(SteadyStateWindowTest, SkipsWarmupOfArrivalSpan) {
  const SteadyStateWindow window =
      ComputeSteadyStateWindow(/*arrival_span=*/200.0, /*last_finish=*/500.0);
  EXPECT_DOUBLE_EQ(window.begin, 20.0);
  EXPECT_DOUBLE_EQ(window.end, 200.0);
}

TEST(SteadyStateWindowTest, ZeroSpanFallsBackToFullRun) {
  // Single-burst traces (every conversation arrives at t=0) have no arrival
  // span; the window must cover [0, last_finish] instead of degenerating to
  // the empty interval [0, 0].
  const SteadyStateWindow window =
      ComputeSteadyStateWindow(/*arrival_span=*/0.0, /*last_finish=*/42.0);
  EXPECT_DOUBLE_EQ(window.begin, 0.0);
  EXPECT_DOUBLE_EQ(window.end, 42.0);
}

TEST(SteadyStateWindowTest, ZeroSpanZeroFinishIsEmptyAtOrigin) {
  const SteadyStateWindow window = ComputeSteadyStateWindow(0.0, 0.0);
  EXPECT_DOUBLE_EQ(window.begin, 0.0);
  EXPECT_DOUBLE_EQ(window.end, 0.0);
}

WorkloadTrace SmallTrace() {
  TraceOptions options;
  options.num_conversations = 20;
  options.conversation_rate = 0.5;
  options.mean_think_time = 10.0;
  options.seed = 1;
  return WorkloadTrace(ShareGptProfile(), options);
}

TEST(ArrivalProcessTest, SeedsOneArrivalPerConversation) {
  WorkloadTrace trace = SmallTrace();
  EventQueue events;
  ArrivalProcess arrivals(trace, &events);
  int64_t seeded = 0;
  std::vector<bool> seen(trace.conversations().size(), false);
  while (!events.Empty()) {
    const SimEvent event = events.Pop();
    EXPECT_EQ(event.kind, SimEventKind::kArrival);
    EXPECT_EQ(event.turn, 0);
    EXPECT_FALSE(seen[static_cast<size_t>(event.id)]);
    seen[static_cast<size_t>(event.id)] = true;
    ++seeded;
  }
  EXPECT_EQ(seeded, static_cast<int64_t>(trace.conversations().size()));
}

TEST(ArrivalProcessTest, BuildRequestAssignsDenseIds) {
  WorkloadTrace trace = SmallTrace();
  EventQueue events;
  ArrivalProcess arrivals(trace, &events);
  int64_t expected_id = 0;
  while (!events.Empty()) {
    const Request req = arrivals.BuildRequest(events.Pop());
    EXPECT_EQ(req.request_id, expected_id++);
  }
  EXPECT_EQ(arrivals.requests_built(), expected_id);
}

// Two replays of the same trace through fresh engines must be identical down
// to the individual scheduler steps, not just the summary.
TEST(DeterminismTest, ReplayIsStepForStepIdentical) {
  GpuCostModel model(Opt13BConfig(), A100Spec(1));
  WorkloadTrace trace = SmallTrace();

  std::vector<StepTraceEntry> trace1, trace2;
  auto e1 = MakeEngine(SystemKind::kPensieve, model);
  auto e2 = MakeEngine(SystemKind::kPensieve, model);
  DriverOptions o1, o2;
  o1.step_trace = &trace1;
  o2.step_trace = &trace2;
  ServingSummary s1 = RunServingExperiment(e1.get(), trace, o1);
  ServingSummary s2 = RunServingExperiment(e2.get(), trace, o2);

  ASSERT_EQ(trace1.size(), trace2.size());
  for (size_t i = 0; i < trace1.size(); ++i) {
    EXPECT_DOUBLE_EQ(trace1[i].start, trace2[i].start);
    EXPECT_DOUBLE_EQ(trace1[i].duration, trace2[i].duration);
    EXPECT_EQ(trace1[i].batch_requests, trace2[i].batch_requests);
    EXPECT_EQ(trace1[i].batch_tokens, trace2[i].batch_tokens);
    EXPECT_EQ(trace1[i].finished, trace2[i].finished);
  }
  EXPECT_EQ(s1.completed_requests, s2.completed_requests);
  EXPECT_DOUBLE_EQ(s1.makespan, s2.makespan);
  EXPECT_DOUBLE_EQ(s1.throughput_rps, s2.throughput_rps);
  EXPECT_DOUBLE_EQ(s1.p99_normalized_latency, s2.p99_normalized_latency);
  EXPECT_EQ(s1.engine_stats.steps, s2.engine_stats.steps);
  EXPECT_EQ(s1.engine_stats.generated_tokens, s2.engine_stats.generated_tokens);
}

void ExpectNearRel(double expected, double actual) {
  // The golden values were captured at RelWithDebInfo; other optimization
  // levels may legally reassociate float math, so pin doubles to a tight
  // relative tolerance instead of bit equality.
  EXPECT_NEAR(actual, expected, std::abs(expected) * 1e-9 + 1e-12);
}

// Golden regression for the driver refactor: this summary was captured from
// the pre-refactor RunServingExperiment on the same trace (opt-13b, A100x1,
// pensieve engine, 20 conversations, rate 0.5, think 10 s, seed 1). The thin
// client built on the shared event core must reproduce it.
TEST(GoldenTest, RefactoredDriverMatchesPreRefactorSummary) {
  GpuCostModel model(Opt13BConfig(), A100Spec(1));
  WorkloadTrace trace = SmallTrace();
  auto engine = MakeEngine(SystemKind::kPensieve, model);
  std::vector<StepTraceEntry> steps;
  DriverOptions options;
  options.step_trace = &steps;
  ServingSummary s = RunServingExperiment(engine.get(), trace, options);

  EXPECT_EQ(s.completed_requests, 124);
  ExpectNearRel(350.00928058107962, s.makespan);
  ExpectNearRel(2.462348760941568, s.window_begin);
  ExpectNearRel(24.623487609415676, s.window_end);
  EXPECT_EQ(s.window_completions, 28);
  ExpectNearRel(1.2634729736341108, s.throughput_rps);
  ExpectNearRel(236.63043834775991, s.token_throughput);
  ExpectNearRel(0.01731055351762972, s.mean_normalized_latency);
  ExpectNearRel(0.017263899251851046, s.p50_normalized_latency);
  ExpectNearRel(0.017734923671687493, s.p90_normalized_latency);
  ExpectNearRel(0.017844557260573646, s.p99_normalized_latency);

  EXPECT_EQ(s.engine_stats.steps, 11588);
  EXPECT_EQ(s.engine_stats.generated_tokens, 23275);
  EXPECT_EQ(s.engine_stats.prefill_tokens, 4322);
  EXPECT_EQ(s.engine_stats.reused_gpu_tokens, 134043);
  EXPECT_EQ(s.engine_stats.reused_cpu_tokens, 0);
  EXPECT_EQ(s.engine_stats.recomputed_history_tokens, 0);
  ExpectNearRel(207.65515339862759, s.engine_stats.busy_seconds);

  ASSERT_EQ(steps.size(), 11588u);
  ExpectNearRel(0.29330745617825099, steps.front().start);
  ExpectNearRel(349.98981066427962, steps.back().start);
}

}  // namespace
}  // namespace pensieve

// Unit tests for the paged two-tier KV cache (src/kvcache).

#include <gtest/gtest.h>

#include "src/kvcache/block_allocator.h"
#include "src/kvcache/context_state.h"
#include "src/kvcache/kv_pool.h"
#include "src/kvcache/two_tier_cache.h"

namespace pensieve {
namespace {

// --- BlockAllocator ----------------------------------------------------------

TEST(BlockAllocatorTest, AllocateUntilExhausted) {
  BlockAllocator alloc(3);
  EXPECT_EQ(alloc.capacity(), 3);
  EXPECT_EQ(alloc.num_free(), 3);
  EXPECT_TRUE(alloc.Allocate().has_value());
  EXPECT_TRUE(alloc.Allocate().has_value());
  EXPECT_TRUE(alloc.Allocate().has_value());
  EXPECT_EQ(alloc.num_free(), 0);
  EXPECT_FALSE(alloc.Allocate().has_value());
}

TEST(BlockAllocatorTest, FreeMakesBlockReusable) {
  BlockAllocator alloc(1);
  BlockId b = *alloc.Allocate();
  EXPECT_FALSE(alloc.Allocate().has_value());
  alloc.Free(b);
  EXPECT_EQ(alloc.num_free(), 1);
  EXPECT_EQ(*alloc.Allocate(), b);
}

TEST(BlockAllocatorTest, UniqueBlockIds) {
  BlockAllocator alloc(64);
  std::vector<bool> seen(64, false);
  for (int i = 0; i < 64; ++i) {
    BlockId b = *alloc.Allocate();
    EXPECT_GE(b, 0);
    EXPECT_LT(b, 64);
    EXPECT_FALSE(seen[static_cast<size_t>(b)]);
    seen[static_cast<size_t>(b)] = true;
  }
}

TEST(BlockAllocatorTest, TracksAllocationState) {
  BlockAllocator alloc(4);
  BlockId b = *alloc.Allocate();
  EXPECT_TRUE(alloc.IsAllocated(b));
  alloc.Free(b);
  EXPECT_FALSE(alloc.IsAllocated(b));
  EXPECT_DOUBLE_EQ(alloc.FreeFraction(), 1.0);
}

TEST(BlockAllocatorDeathTest, DoubleFreeAborts) {
  BlockAllocator alloc(2);
  BlockId b = *alloc.Allocate();
  alloc.Free(b);
  EXPECT_DEATH(alloc.Free(b), "double free");
}

TEST(BlockAllocatorTest, ShareAddsReferencesAndFreeDropsThem) {
  BlockAllocator alloc(2);
  BlockId b = *alloc.Allocate();
  EXPECT_EQ(alloc.refcount(b), 1);
  alloc.Share(b);
  alloc.Share(b);
  EXPECT_EQ(alloc.refcount(b), 3);
  EXPECT_EQ(alloc.num_shared(), 1);
  // Intermediate frees return nothing to the free list.
  EXPECT_FALSE(alloc.Free(b));
  EXPECT_FALSE(alloc.Free(b));
  EXPECT_TRUE(alloc.IsAllocated(b));
  EXPECT_EQ(alloc.num_shared(), 0);
  // The last reference actually frees the block.
  EXPECT_TRUE(alloc.Free(b));
  EXPECT_FALSE(alloc.IsAllocated(b));
  EXPECT_EQ(alloc.num_free(), 2);
  // Ledger: 3 acquires (1 allocate + 2 shares) balanced by 3 releases.
  EXPECT_EQ(alloc.total_acquires(), 3);
  EXPECT_EQ(alloc.total_releases(), 3);
  EXPECT_EQ(alloc.live_refs(), 0);
  alloc.CheckAllFree();
}

TEST(BlockAllocatorTest, PeakAllocatedIsAHighWaterMark) {
  BlockAllocator alloc(4);
  BlockId a = *alloc.Allocate();
  BlockId b = *alloc.Allocate();
  alloc.Free(a);
  alloc.Free(b);
  *alloc.Allocate();
  EXPECT_EQ(alloc.peak_allocated(), 2);
}

TEST(BlockAllocatorDeathTest, CheckAllFreeDiesOnOutstandingBlock) {
  BlockAllocator alloc(2);
  *alloc.Allocate();
  EXPECT_DEATH(alloc.CheckAllFree(), "block leak");
}

TEST(BlockAllocatorDeathTest, ShareOfFreeBlockAborts) {
  BlockAllocator alloc(2);
  BlockId b = *alloc.Allocate();
  alloc.Free(b);
  EXPECT_DEATH(alloc.Share(b), "share of unallocated");
}

// --- KvPool -------------------------------------------------------------------

TEST(KvPoolTest, WriteAndReadBack) {
  KvPool pool(/*num_blocks=*/4, /*block_size=*/8, /*num_layers=*/2,
              /*num_kv_heads=*/2, /*head_dim=*/4);
  std::vector<float> k(8, 1.5f);
  std::vector<float> v(8, -2.5f);
  pool.WriteToken(/*block=*/3, /*layer=*/1, /*slot=*/5, k.data(), v.data());
  const float* k_read = pool.TokenData(3, 1, 0, 5);
  const float* v_read = pool.TokenData(3, 1, 1, 5);
  for (int i = 0; i < 8; ++i) {
    EXPECT_FLOAT_EQ(k_read[i], 1.5f);
    EXPECT_FLOAT_EQ(v_read[i], -2.5f);
  }
  // Neighboring slots untouched.
  EXPECT_FLOAT_EQ(pool.TokenData(3, 1, 0, 4)[0], 0.0f);
  EXPECT_FLOAT_EQ(pool.TokenData(3, 0, 0, 5)[0], 0.0f);
}

TEST(KvPoolTest, CopyBlockAcrossPools) {
  KvPool gpu(2, 4, 1, 1, 2);
  KvPool cpu(3, 4, 1, 1, 2);
  std::vector<float> k = {1, 2};
  std::vector<float> v = {3, 4};
  gpu.WriteToken(1, 0, 2, k.data(), v.data());
  KvPool::CopyBlock(gpu, 1, cpu, 0);
  EXPECT_FLOAT_EQ(cpu.TokenData(0, 0, 0, 2)[1], 2.0f);
  EXPECT_FLOAT_EQ(cpu.TokenData(0, 0, 1, 2)[0], 3.0f);
}

// --- ContextState ------------------------------------------------------------

TEST(ContextStateTest, AppendWithinOneChunk) {
  ContextState state(8);
  std::vector<ContextState::SlotRef> slots;
  EXPECT_EQ(state.NumNewChunksForAppend(5), 1);
  state.AppendTokens(5, {BlockId{7}}, &slots);
  EXPECT_EQ(state.kv_len(), 5);
  EXPECT_EQ(state.num_chunks(), 1);
  EXPECT_EQ(state.chunk(0).gpu_block, 7);
  EXPECT_EQ(state.chunk(0).num_tokens, 5);
  ASSERT_EQ(slots.size(), 5u);
  EXPECT_EQ(slots[0].slot, 0);
  EXPECT_EQ(slots[4].slot, 4);
}

TEST(ContextStateTest, AppendSpansChunks) {
  ContextState state(4);
  state.AppendTokens(3, {BlockId{0}}, nullptr);
  EXPECT_EQ(state.NumNewChunksForAppend(6), 2);  // 1 fits, 5 overflow -> 2 chunks
  std::vector<ContextState::SlotRef> slots;
  state.AppendTokens(6, {BlockId{1}, BlockId{2}}, &slots);
  EXPECT_EQ(state.kv_len(), 9);
  EXPECT_EQ(state.num_chunks(), 3);
  EXPECT_EQ(state.chunk(2).num_tokens, 1);
  // First appended token fills slot 3 of the original chunk.
  EXPECT_EQ(slots[0].block, 0);
  EXPECT_EQ(slots[0].slot, 3);
  EXPECT_EQ(slots[1].block, 1);
  EXPECT_EQ(slots[1].slot, 0);
}

TEST(ContextStateTest, ChunkContextLen) {
  ContextState state(4);
  state.AppendTokens(10, {0, 1, 2}, nullptr);
  EXPECT_EQ(state.ChunkContextLen(0), 4);
  EXPECT_EQ(state.ChunkContextLen(1), 8);
  EXPECT_EQ(state.ChunkContextLen(2), 10);
}

TEST(ContextStateTest, ResidencyCounters) {
  ContextState state(4);
  state.AppendTokens(12, {0, 1, 2}, nullptr);
  state.mutable_chunk(0).location = ChunkLocation::kDropped;
  state.mutable_chunk(0).gpu_block = kInvalidBlock;
  state.mutable_chunk(1).location = ChunkLocation::kCpu;
  state.mutable_chunk(1).cpu_block = 5;
  state.mutable_chunk(1).gpu_block = kInvalidBlock;
  EXPECT_EQ(state.TokensDropped(), 4);
  EXPECT_EQ(state.TokensCpuOnly(), 4);
  EXPECT_EQ(state.TokensOnGpu(), 4);
  EXPECT_EQ(state.LeadingDroppedTokens(), 4);
  EXPECT_EQ(state.LeadingDroppedChunks(), 1);
  EXPECT_FALSE(state.FullyOnGpu());
  EXPECT_EQ(state.CpuOnlyChunks(), std::vector<int64_t>{1});
}

TEST(ContextStateTest, PinCounting) {
  ContextState state(4);
  EXPECT_FALSE(state.pinned());
  state.Pin();
  state.Pin();
  state.Unpin();
  EXPECT_TRUE(state.pinned());
  state.Unpin();
  EXPECT_FALSE(state.pinned());
}

// --- TwoTierKvCache ----------------------------------------------------------

KvCacheConfig SmallConfig(int64_t gpu_blocks = 8, int64_t cpu_blocks = 8) {
  KvCacheConfig config;
  config.block_size = 4;
  config.num_gpu_blocks = gpu_blocks;
  config.num_cpu_blocks = cpu_blocks;
  return config;
}

TEST(TwoTierCacheTest, AppendAllocatesGpuBlocks) {
  TwoTierKvCache cache(SmallConfig());
  std::vector<ContextState::SlotRef> slots;
  ASSERT_TRUE(cache.AppendTokenSlots(1, 10, &slots).ok());
  EXPECT_EQ(cache.gpu_allocator().num_allocated(), 3);
  EXPECT_EQ(cache.Find(1)->kv_len(), 10);
  cache.CheckInvariants();
}

TEST(TwoTierCacheTest, AppendFailsWhenGpuExhausted) {
  TwoTierKvCache cache(SmallConfig(/*gpu_blocks=*/2));
  EXPECT_TRUE(cache.AppendTokenSlots(1, 8, nullptr).ok());
  Status s = cache.AppendTokenSlots(2, 1, nullptr);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  // Failed append must not leak partial state.
  EXPECT_EQ(cache.Find(2)->kv_len(), 0);
  cache.CheckInvariants();
}

TEST(TwoTierCacheTest, SwapOutReclaimSwapInCycle) {
  TwoTierKvCache cache(SmallConfig());
  ASSERT_TRUE(cache.AppendTokenSlots(1, 4, nullptr).ok());
  ASSERT_TRUE(cache.SwapOut(1, 0).ok());
  EXPECT_EQ(cache.Find(1)->chunk(0).location, ChunkLocation::kGpuAndCpu);
  EXPECT_EQ(cache.ReclaimableGpuBlocks(), 1);
  ASSERT_TRUE(cache.ReclaimGpu(1, 0).ok());
  EXPECT_EQ(cache.Find(1)->chunk(0).location, ChunkLocation::kCpu);
  EXPECT_EQ(cache.gpu_allocator().num_allocated(), 0);
  ASSERT_TRUE(cache.SwapIn(1, 0).ok());
  EXPECT_EQ(cache.Find(1)->chunk(0).location, ChunkLocation::kGpuAndCpu);
  cache.CheckInvariants();
}

TEST(TwoTierCacheTest, SwapOutRequiresGpuOnlyChunk) {
  TwoTierKvCache cache(SmallConfig());
  ASSERT_TRUE(cache.AppendTokenSlots(1, 4, nullptr).ok());
  ASSERT_TRUE(cache.SwapOut(1, 0).ok());
  EXPECT_EQ(cache.SwapOut(1, 0).code(), StatusCode::kFailedPrecondition);
}

TEST(TwoTierCacheTest, SwapOutFailsWhenCpuFull) {
  TwoTierKvCache cache(SmallConfig(/*gpu_blocks=*/8, /*cpu_blocks=*/1));
  ASSERT_TRUE(cache.AppendTokenSlots(1, 8, nullptr).ok());
  ASSERT_TRUE(cache.SwapOut(1, 0).ok());
  EXPECT_EQ(cache.SwapOut(1, 1).code(), StatusCode::kResourceExhausted);
  cache.CheckInvariants();
}

TEST(TwoTierCacheTest, DropCpuCopyRevertsToGpu) {
  TwoTierKvCache cache(SmallConfig());
  ASSERT_TRUE(cache.AppendTokenSlots(1, 4, nullptr).ok());
  ASSERT_TRUE(cache.SwapOut(1, 0).ok());
  ASSERT_TRUE(cache.DropCpuCopy(1, 0).ok());
  EXPECT_EQ(cache.Find(1)->chunk(0).location, ChunkLocation::kGpu);
  EXPECT_EQ(cache.cpu_allocator().num_allocated(), 0);
  EXPECT_EQ(cache.ReclaimableGpuBlocks(), 0);
  cache.CheckInvariants();
}

TEST(TwoTierCacheTest, DropChunkEnforcesPrefixInvariant) {
  TwoTierKvCache cache(SmallConfig());
  ASSERT_TRUE(cache.AppendTokenSlots(1, 12, nullptr).ok());
  // Dropping a middle chunk before the first is illegal.
  EXPECT_EQ(cache.DropChunk(1, 1).code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(cache.DropChunk(1, 0).ok());
  ASSERT_TRUE(cache.DropChunk(1, 1).ok());
  EXPECT_EQ(cache.Find(1)->LeadingDroppedTokens(), 8);
  EXPECT_EQ(cache.gpu_allocator().num_allocated(), 1);
  cache.CheckInvariants();
}

TEST(TwoTierCacheTest, DropChunkTwiceFails) {
  TwoTierKvCache cache(SmallConfig());
  ASSERT_TRUE(cache.AppendTokenSlots(1, 4, nullptr).ok());
  ASSERT_TRUE(cache.DropChunk(1, 0).ok());
  EXPECT_EQ(cache.DropChunk(1, 0).code(), StatusCode::kFailedPrecondition);
}

TEST(TwoTierCacheTest, RestoreDroppedAllocatesFreshBlock) {
  TwoTierKvCache cache(SmallConfig());
  ASSERT_TRUE(cache.AppendTokenSlots(1, 8, nullptr).ok());
  ASSERT_TRUE(cache.DropChunk(1, 0).ok());
  ASSERT_TRUE(cache.RestoreDropped(1, 0).ok());
  EXPECT_EQ(cache.Find(1)->chunk(0).location, ChunkLocation::kGpu);
  EXPECT_EQ(cache.Find(1)->chunk(0).num_tokens, 4);  // token count preserved
  cache.CheckInvariants();
}

TEST(TwoTierCacheTest, AppendIntoTailWithStaleCpuCopyInvalidatesIt) {
  TwoTierKvCache cache(SmallConfig());
  ASSERT_TRUE(cache.AppendTokenSlots(1, 2, nullptr).ok());  // partial tail
  ASSERT_TRUE(cache.SwapOut(1, 0).ok());
  ASSERT_TRUE(cache.AppendTokenSlots(1, 1, nullptr).ok());
  EXPECT_EQ(cache.Find(1)->chunk(0).location, ChunkLocation::kGpu);
  EXPECT_EQ(cache.cpu_allocator().num_allocated(), 0);
  cache.CheckInvariants();
}

TEST(TwoTierCacheTest, AppendIntoCpuResidentTailFails) {
  TwoTierKvCache cache(SmallConfig());
  ASSERT_TRUE(cache.AppendTokenSlots(1, 2, nullptr).ok());
  ASSERT_TRUE(cache.SwapOut(1, 0).ok());
  ASSERT_TRUE(cache.ReclaimGpu(1, 0).ok());
  EXPECT_EQ(cache.AppendTokenSlots(1, 1, nullptr).code(),
            StatusCode::kFailedPrecondition);
}

TEST(TwoTierCacheTest, ReleaseFreesEverything) {
  TwoTierKvCache cache(SmallConfig());
  ASSERT_TRUE(cache.AppendTokenSlots(1, 12, nullptr).ok());
  ASSERT_TRUE(cache.SwapOut(1, 0).ok());
  ASSERT_TRUE(cache.SwapOut(1, 1).ok());
  ASSERT_TRUE(cache.ReclaimGpu(1, 1).ok());
  cache.Release(1);
  EXPECT_EQ(cache.gpu_allocator().num_allocated(), 0);
  EXPECT_EQ(cache.cpu_allocator().num_allocated(), 0);
  EXPECT_EQ(cache.Find(1), nullptr);
  cache.CheckInvariants();
}

TEST(TwoTierCacheTest, GpuBlockTableCoversChunksInOrder) {
  TwoTierKvCache cache(SmallConfig());
  ASSERT_TRUE(cache.AppendTokenSlots(1, 12, nullptr).ok());
  std::vector<BlockId> table = cache.GpuBlockTable(1);
  ASSERT_EQ(table.size(), 3u);
  EXPECT_EQ(table[0], cache.Find(1)->chunk(0).gpu_block);
  EXPECT_EQ(table[2], cache.Find(1)->chunk(2).gpu_block);
}

TEST(TwoTierCacheTest, NumericSwapMovesData) {
  KvCacheConfig config = SmallConfig();
  config.numeric = true;
  config.num_layers = 2;
  config.num_kv_heads = 2;
  config.head_dim = 4;
  TwoTierKvCache cache(config);
  std::vector<ContextState::SlotRef> slots;
  ASSERT_TRUE(cache.AppendTokenSlots(1, 4, &slots).ok());
  std::vector<float> k(8, 3.0f);
  std::vector<float> v(8, 4.0f);
  cache.gpu_pool()->WriteToken(slots[2].block, 1, slots[2].slot, k.data(), v.data());

  ASSERT_TRUE(cache.SwapOut(1, 0).ok());
  ASSERT_TRUE(cache.ReclaimGpu(1, 0).ok());
  // Round trip: data must survive GPU -> CPU -> (new) GPU block.
  ASSERT_TRUE(cache.SwapIn(1, 0).ok());
  const BlockId gpu_block = cache.Find(1)->chunk(0).gpu_block;
  EXPECT_FLOAT_EQ(cache.gpu_pool()->TokenData(gpu_block, 1, 0, 2)[0], 3.0f);
  EXPECT_FLOAT_EQ(cache.gpu_pool()->TokenData(gpu_block, 1, 1, 2)[7], 4.0f);
  cache.CheckInvariants();
}

TEST(TwoTierCacheTest, CountersTrackOperations) {
  TwoTierKvCache cache(SmallConfig());
  ASSERT_TRUE(cache.AppendTokenSlots(1, 8, nullptr).ok());
  ASSERT_TRUE(cache.SwapOut(1, 0).ok());
  ASSERT_TRUE(cache.ReclaimGpu(1, 0).ok());
  ASSERT_TRUE(cache.SwapIn(1, 0).ok());
  ASSERT_TRUE(cache.DropChunk(1, 0).ok());
  ASSERT_TRUE(cache.RestoreDropped(1, 0).ok());
  const auto& counters = cache.counters();
  EXPECT_EQ(counters.swapped_out_chunks, 1);
  EXPECT_EQ(counters.reclaimed_gpu_blocks, 1);
  EXPECT_EQ(counters.swapped_in_chunks, 1);
  EXPECT_EQ(counters.dropped_chunks, 1);
  EXPECT_EQ(counters.restored_chunks, 1);
}

TEST(TwoTierCacheTest, ShutdownLeakAuditBalancedAfterSharedLifecycle) {
  KvCacheConfig config = SmallConfig();
  config.enable_prefix_sharing = true;
  TwoTierKvCache cache(config);
  // Exercise allocate, share, copy-on-write and release, then prove the
  // ledger balances: no outstanding blocks, acquires == releases, and the
  // destructor's VerifyNoLeaks audit passes.
  ASSERT_TRUE(cache.AppendTokenSlots(1, 8, nullptr).ok());
  std::vector<BlockId> published = cache.GpuBlockTable(1);
  cache.PublishSharedPrefix({11, 22}, published);
  cache.AttachSharedPrefix(2, published, 7);  // partial tail view
  ASSERT_TRUE(cache.AppendTokenSlots(2, 2, nullptr).ok());  // forces CoW
  ASSERT_TRUE(cache.SwapOut(1, 0).ok());
  cache.VerifyNoLeaks();
  cache.Release(1);
  cache.Release(2);
  EXPECT_EQ(cache.gpu_allocator().num_allocated(), 0);
  EXPECT_EQ(cache.cpu_allocator().num_allocated(), 0);
  EXPECT_EQ(cache.gpu_allocator().live_refs(), 0);
  EXPECT_EQ(cache.gpu_allocator().total_acquires(),
            cache.gpu_allocator().total_releases());
  cache.gpu_allocator().CheckAllFree();
  cache.cpu_allocator().CheckAllFree();
  cache.VerifyNoLeaks();
  cache.CheckInvariants();
}

TEST(TwoTierCacheTest, MultipleConversationsIsolated) {
  TwoTierKvCache cache(SmallConfig(16, 16));
  ASSERT_TRUE(cache.AppendTokenSlots(1, 8, nullptr).ok());
  ASSERT_TRUE(cache.AppendTokenSlots(2, 8, nullptr).ok());
  ASSERT_TRUE(cache.DropChunk(1, 0).ok());
  EXPECT_EQ(cache.Find(2)->TokensDropped(), 0);
  EXPECT_EQ(cache.Find(1)->TokensDropped(), 4);
  cache.Release(1);
  EXPECT_EQ(cache.Find(2)->kv_len(), 8);
  cache.CheckInvariants();
}

}  // namespace
}  // namespace pensieve

// Tests for prefill/decode disaggregation (DESIGN.md §13): the disagg
// router's dispatch rules, GPU-direct KV import, export/import block-ledger
// hygiene, and the cluster driver's handoff lifecycle under NIC faults and
// replica failures.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/cluster/cluster_driver.h"
#include "src/cluster/router.h"
#include "src/core/experiment.h"
#include "src/kvcache/two_tier_cache.h"
#include "src/model/model_config.h"
#include "src/serving/experiment_core.h"
#include "src/serving/pensieve_engine.h"
#include "src/sim/hardware.h"

namespace pensieve {
namespace {

GpuCostModel Opt13BModel() {
  return GpuCostModel(Opt13BConfig(), A100Spec(1));
}

// Long prompts so most turns clear the handoff threshold.
WorkloadTrace PrefillHeavyTrace(int64_t conversations, double rate = 0.5,
                                double think = 10.0, uint64_t seed = 1) {
  DatasetProfile profile;
  profile.name = "prefill-heavy-test";
  profile.mean_turns = 2.0;
  profile.mean_input_len = 600.0;
  profile.input_len_cv = 0.5;
  profile.mean_output_len = 24.0;
  profile.output_len_cv = 0.5;
  TraceOptions options;
  options.num_conversations = conversations;
  options.conversation_rate = rate;
  options.mean_think_time = think;
  options.seed = seed;
  return WorkloadTrace(profile, options);
}

ReplicaEngineFactory PensieveFactory(const GpuCostModel& model) {
  return [&model](int32_t) { return MakeEngine(SystemKind::kPensieve, model); };
}

ClusterOptions DisaggOptionsFor(int32_t replicas, int32_t prefill_replicas,
                                int64_t min_handoff_tokens = 64) {
  ClusterOptions options;
  options.num_replicas = replicas;
  options.disagg.enabled = true;
  options.disagg.prefill_replicas = prefill_replicas;
  options.disagg.min_handoff_tokens = min_handoff_tokens;
  options.disagg.stream_layers = 40;
  return options;
}

// --- DisaggRouter dispatch rules --------------------------------------------

Request FreshTurn(int64_t conv, int64_t prompt) {
  Request r;
  r.request_id = conv;
  r.conversation_id = conv;
  r.new_prompt_len = prompt;
  r.target_output_len = 16;
  return r;
}

// Three alive pensieve-engine views (engines owned by the fixture).
struct RouterRig {
  explicit RouterRig(int32_t n) {
    for (int32_t i = 0; i < n; ++i) {
      engines.push_back(MakeEngine(SystemKind::kPensieve, model));
      ReplicaView view;
      view.engine = engines.back().get();
      view.alive = true;
      views.push_back(view);
    }
  }
  GpuCostModel model = Opt13BModel();
  std::vector<std::unique_ptr<Engine>> engines;
  std::vector<ReplicaView> views;
};

TEST(DisaggRouterTest, SmallTurnsSkipThePrefillPool) {
  RouterRig rig(3);
  DisaggRouterConfig config;
  config.prefill_replicas = 1;
  config.min_handoff_tokens = 100;
  auto router = MakeDisaggRouter(config);
  const RoutingDecision d = router->Route(FreshTurn(1, 50), rig.views);
  EXPECT_FALSE(d.prefill_handoff);
  EXPECT_GE(d.target, 1);  // decode pool is [1, 3)
}

TEST(DisaggRouterTest, LargeTurnsHandOffToThePrefillPool) {
  RouterRig rig(3);
  DisaggRouterConfig config;
  config.prefill_replicas = 1;
  config.min_handoff_tokens = 100;
  auto router = MakeDisaggRouter(config);
  const RoutingDecision d = router->Route(FreshTurn(1, 500), rig.views);
  EXPECT_TRUE(d.prefill_handoff);
  EXPECT_EQ(d.target, 0);
}

TEST(DisaggRouterTest, TiedPrefillPoolRotatesInsteadOfHerding) {
  RouterRig rig(4);
  DisaggRouterConfig config;
  config.prefill_replicas = 2;
  config.min_handoff_tokens = 100;
  auto router = MakeDisaggRouter(config);
  // Idle-looking pool (all loads zero, the common snapshot between replica
  // steps): consecutive dispatches must alternate, not pile onto replica 0.
  const RoutingDecision a = router->Route(FreshTurn(1, 500), rig.views);
  const RoutingDecision b = router->Route(FreshTurn(2, 500), rig.views);
  const RoutingDecision c = router->Route(FreshTurn(3, 500), rig.views);
  ASSERT_TRUE(a.prefill_handoff && b.prefill_handoff && c.prefill_handoff);
  EXPECT_NE(a.target, b.target);
  EXPECT_EQ(a.target, c.target);
}

TEST(DisaggRouterTest, WeightedLoadOverridesRotation) {
  RouterRig rig(4);
  DisaggRouterConfig config;
  config.prefill_replicas = 2;
  config.min_handoff_tokens = 100;
  auto router = MakeDisaggRouter(config);
  // Replica 0 has a heavy queued recompute backlog only the weighted term
  // sees; every dispatch must prefer replica 1 regardless of rotation.
  rig.views[0].load.queued_uncached_prefill_tokens = 10000;
  for (int i = 0; i < 3; ++i) {
    const RoutingDecision d = router->Route(FreshTurn(10 + i, 500), rig.views);
    ASSERT_TRUE(d.prefill_handoff);
    EXPECT_EQ(d.target, 1);
  }
}

TEST(DisaggRouterTest, ContinuationsStickToTheirDecodeHome) {
  RouterRig rig(3);
  DisaggRouterConfig config;
  config.prefill_replicas = 1;
  config.min_handoff_tokens = 100;
  auto router = MakeDisaggRouter(config);
  Request cont = FreshTurn(7, 1);
  cont.handoff_continuation = true;
  const RoutingDecision first = router->Route(cont, rig.views);
  EXPECT_GE(first.target, 1);
  // Later turns (and later continuations) reuse the home even when the
  // other decode replica now looks emptier.
  rig.views[static_cast<size_t>(first.target)].load.outstanding_output_tokens =
      5000;
  const RoutingDecision again = router->Route(cont, rig.views);
  EXPECT_EQ(again.target, first.target);
}

TEST(DisaggRouterTest, DeadHomeIsForgottenAndRehomed) {
  RouterRig rig(3);
  DisaggRouterConfig config;
  config.prefill_replicas = 1;
  config.min_handoff_tokens = 100;
  auto router = MakeDisaggRouter(config);
  Request cont = FreshTurn(7, 1);
  cont.handoff_continuation = true;
  const RoutingDecision first = router->Route(cont, rig.views);
  router->NotifyReplicaDown(first.target);
  rig.views[static_cast<size_t>(first.target)].alive = false;
  const RoutingDecision moved = router->Route(cont, rig.views);
  EXPECT_NE(moved.target, first.target);
  EXPECT_GE(moved.target, 1);
}

TEST(DisaggRouterTest, DeadPrefillPoolFallsThroughColocated) {
  RouterRig rig(3);
  DisaggRouterConfig config;
  config.prefill_replicas = 1;
  config.min_handoff_tokens = 100;
  auto router = MakeDisaggRouter(config);
  rig.views[0].alive = false;
  const RoutingDecision d = router->Route(FreshTurn(1, 500), rig.views);
  EXPECT_FALSE(d.prefill_handoff);
  EXPECT_GE(d.target, 1);
}

// --- Weighted least-loaded (queued-but-unadmitted prefill tokens) -----------

TEST(LeastLoadedTest, WeightedRoutingSeesQueuedRecomputeBacklog) {
  RouterRig rig(2);
  // Replica 0: short queue by outstanding tokens, huge queued recompute.
  rig.views[0].load.queued_input_tokens = 10;
  rig.views[0].load.queued_uncached_prefill_tokens = 8000;
  rig.views[1].load.queued_input_tokens = 500;
  EXPECT_EQ(LeastLoadedReplica(rig.views, /*weight_queued_prefill=*/false), 0);
  EXPECT_EQ(LeastLoadedReplica(rig.views, /*weight_queued_prefill=*/true), 1);
}

// --- GPU-direct import -------------------------------------------------------

KvCacheConfig SmallCacheConfig(int64_t gpu_blocks, int64_t cpu_blocks) {
  KvCacheConfig config;
  config.block_size = 4;
  config.num_gpu_blocks = gpu_blocks;
  config.num_cpu_blocks = cpu_blocks;
  return config;
}

TEST(ImportGpuResidentTest, ResidentRegionLandsOnGpu) {
  TwoTierKvCache cache(SmallCacheConfig(/*gpu_blocks=*/8, /*cpu_blocks=*/8));
  const int64_t imported = cache.ImportGpuResident(1, /*kv_len=*/20,
                                                   /*resident_tokens=*/20);
  EXPECT_EQ(imported, 20);
  const ContextState* state = cache.Find(1);
  ASSERT_NE(state, nullptr);
  for (int64_t i = 0; i < state->num_chunks(); ++i) {
    EXPECT_TRUE(state->chunk(i).OnGpu()) << "chunk " << i;
  }
  cache.CheckInvariants();
}

TEST(ImportGpuResidentTest, FallsBackToCpuWhenGpuIsFull) {
  TwoTierKvCache cache(SmallCacheConfig(/*gpu_blocks=*/2, /*cpu_blocks=*/8));
  const int64_t imported = cache.ImportGpuResident(1, 20, 20);
  EXPECT_EQ(imported, 20);
  const ContextState* state = cache.Find(1);
  ASSERT_NE(state, nullptr);
  int64_t on_gpu = 0;
  int64_t on_cpu = 0;
  for (int64_t i = 0; i < state->num_chunks(); ++i) {
    if (state->chunk(i).OnGpu()) {
      on_gpu += state->chunk(i).num_tokens;
    } else {
      on_cpu += state->chunk(i).num_tokens;
    }
  }
  EXPECT_EQ(on_gpu, 8);   // both GPU blocks
  EXPECT_EQ(on_cpu, 12);  // the rest bounced through host memory
  cache.CheckInvariants();
}

TEST(ImportGpuResidentTest, ExhaustedTiersLeaveLeadingPrefixDropped) {
  TwoTierKvCache cache(SmallCacheConfig(/*gpu_blocks=*/2, /*cpu_blocks=*/1));
  const int64_t imported = cache.ImportGpuResident(1, 20, 20);
  EXPECT_EQ(imported, 12);  // 2 GPU blocks + 1 CPU block of 4 tokens each
  cache.CheckInvariants();
}

TEST(ImportGpuResidentTest, ReleaseLeavesNoOrphanedBlocks) {
  TwoTierKvCache cache(SmallCacheConfig(/*gpu_blocks=*/4, /*cpu_blocks=*/4));
  cache.ImportGpuResident(1, 24, 24);
  cache.Release(1);
  cache.gpu_allocator().CheckAllFree();
  cache.cpu_allocator().CheckAllFree();
}

// --- Export ledger hygiene ---------------------------------------------------

TEST(DisaggExportTest, ExportAfterPrefillLeavesNoOrphanedBlocks) {
  GpuCostModel model = Opt13BModel();
  PensieveEngineOptions options;
  options.block_size = 32;
  options.num_gpu_blocks = 64;
  options.num_cpu_blocks = 256;
  PensieveEngine engine(model, options);
  Request r;
  r.request_id = 0;
  r.conversation_id = 9;
  r.new_prompt_len = 100;
  r.target_output_len = 1;
  r.prefill_only = true;
  engine.Enqueue(r, 0.0);
  double now = 0.0;
  while (engine.HasWork()) {
    StepResult step = engine.Step(now);
    ASSERT_FALSE(step.idle);
    now += step.duration;
  }
  MigratedKvState state = engine.ExportConversationState(9);
  EXPECT_GT(state.resident_tokens, 0);
  EXPECT_GT(state.bytes, 0.0);
  // The exporting side must hold zero blocks afterwards — a failed stream
  // must never strand KV on the prefill replica.
  engine.cache().gpu_allocator().CheckAllFree();
  engine.cache().cpu_allocator().CheckAllFree();
}

// --- Cluster lifecycle -------------------------------------------------------

TEST(DisaggClusterTest, CompletesEverythingAndStreams) {
  GpuCostModel model = Opt13BModel();
  const WorkloadTrace trace = PrefillHeavyTrace(12);

  ClusterOptions colocated;
  colocated.num_replicas = 3;
  const ClusterSummary base =
      RunClusterExperiment(PensieveFactory(model), trace, colocated);

  const ClusterSummary disagg = RunClusterExperiment(
      PensieveFactory(model), trace, DisaggOptionsFor(3, 1));
  EXPECT_EQ(disagg.cluster.completed_requests, base.cluster.completed_requests);
  EXPECT_EQ(disagg.prefill_replicas, 1);
  EXPECT_GT(disagg.handoff.handoff_requests, 0);
  EXPECT_GT(disagg.handoff.streams, 0);
  EXPECT_GT(disagg.handoff.streamed_tokens, 0);
  EXPECT_EQ(disagg.handoff.failed_streams, 0);
  EXPECT_GE(disagg.handoff.overlap_saved_seconds, 0.0);
  // Colocated runs report zero handoff activity (the summary stays silent).
  EXPECT_EQ(base.handoff.streams, 0);
  EXPECT_EQ(base.prefill_replicas, 0);
}

TEST(DisaggClusterTest, OutcomesCarryHandoffAttribution) {
  GpuCostModel model = Opt13BModel();
  const WorkloadTrace trace = PrefillHeavyTrace(8);
  std::vector<RequestOutcome> outcomes;
  ClusterOptions options = DisaggOptionsFor(3, 1);
  options.outcomes = &outcomes;
  const ClusterSummary summary =
      RunClusterExperiment(PensieveFactory(model), trace, options);
  ASSERT_GT(summary.handoff.streams, 0);
  int64_t attributed = 0;
  for (const RequestOutcome& o : outcomes) {
    if (o.prefill_replica >= 0) {
      ++attributed;
      EXPECT_EQ(o.prefill_replica, 0);
      EXPECT_GT(o.handoff_stream_done, 0.0);
      // TTFT comes from the prefill side; the merged outcome must have it.
      EXPECT_GT(o.first_token_time, 0.0);
      EXPECT_GE(o.finish_time, o.first_token_time);
    }
  }
  EXPECT_GT(attributed, 0);
}

TEST(DisaggClusterTest, SurvivesNicFaultsAndMidRunReplicaFailures) {
  GpuCostModel model = Opt13BModel();
  const WorkloadTrace trace = PrefillHeavyTrace(16, 0.5, 8.0, 3);

  ClusterOptions colocated;
  colocated.num_replicas = 3;
  const ClusterSummary base =
      RunClusterExperiment(PensieveFactory(model), trace, colocated);

  ClusterOptions options = DisaggOptionsFor(3, 1);
  options.nic_fault_profile.stall_rate = 0.1;
  options.nic_fault_profile.partial_rate = 0.1;
  options.nic_fault_profile.corruption_rate = 0.05;
  options.fault_seed = 99;
  // Kill a decode replica and the only prefill replica mid-run; both come
  // back. Streams in flight to/from the victims are voided, their requests
  // re-route, and nothing is dropped.
  options.faults.push_back({6.0, 2, false});
  options.faults.push_back({8.0, 0, false});
  options.faults.push_back({12.0, 2, true});
  options.faults.push_back({14.0, 0, true});
  const ClusterSummary summary =
      RunClusterExperiment(PensieveFactory(model), trace, options);

  EXPECT_EQ(summary.cluster.completed_requests,
            base.cluster.completed_requests);
  EXPECT_EQ(summary.faults.failures, 2);
  EXPECT_EQ(summary.faults.recoveries, 2);
  EXPECT_EQ(summary.faults.orphaned_requests, 0);
  const LinkFaultStats& nic = summary.nic_link_faults;
  EXPECT_EQ(nic.injected_timeouts + nic.injected_partials +
                nic.injected_corruptions,
            nic.recovered_faults + nic.unrecovered_faults);
}

TEST(DisaggClusterTest, SingleTokenTurnsFinishOnThePrefillSide) {
  // target_output_len == 1 means the prefill emits the whole response; the
  // stream only places KV for the next turn (state_only). The run must
  // still complete everything exactly once.
  GpuCostModel model = Opt13BModel();
  DatasetProfile profile;
  profile.name = "one-token";
  profile.mean_turns = 2.0;
  profile.mean_input_len = 400.0;
  profile.input_len_cv = 0.2;
  profile.mean_output_len = 1.0;
  profile.output_len_cv = 0.01;  // sampler needs nonzero spread; rounds to 1
  TraceOptions trace_options;
  trace_options.num_conversations = 6;
  trace_options.conversation_rate = 0.5;
  trace_options.mean_think_time = 5.0;
  trace_options.seed = 4;
  const WorkloadTrace trace(profile, trace_options);

  ClusterOptions colocated;
  colocated.num_replicas = 3;
  const ClusterSummary base =
      RunClusterExperiment(PensieveFactory(model), trace, colocated);
  const ClusterSummary disagg = RunClusterExperiment(
      PensieveFactory(model), trace, DisaggOptionsFor(3, 1));
  EXPECT_EQ(disagg.cluster.completed_requests,
            base.cluster.completed_requests);
}

TEST(DisaggClusterTest, DeterministicAcrossIdenticalRuns) {
  GpuCostModel model = Opt13BModel();
  const WorkloadTrace trace = PrefillHeavyTrace(10);
  ClusterOptions options = DisaggOptionsFor(3, 1);
  const ClusterSummary a =
      RunClusterExperiment(PensieveFactory(model), trace, options);
  const ClusterSummary b =
      RunClusterExperiment(PensieveFactory(model), trace, options);
  EXPECT_EQ(a.cluster.completed_requests, b.cluster.completed_requests);
  EXPECT_DOUBLE_EQ(a.cluster.makespan, b.cluster.makespan);
  EXPECT_EQ(a.handoff.streams, b.handoff.streams);
  EXPECT_DOUBLE_EQ(a.handoff.overlap_saved_seconds,
                   b.handoff.overlap_saved_seconds);
}

}  // namespace
}  // namespace pensieve

// Tests for telemetry: step traces and CSV export.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/core/experiment.h"
#include "src/model/model_config.h"
#include "src/serving/driver.h"
#include "src/serving/telemetry.h"
#include "src/sim/hardware.h"

namespace pensieve {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

size_t CountLines(const std::string& text) {
  size_t lines = 0;
  for (char c : text) {
    if (c == '\n') {
      ++lines;
    }
  }
  return lines;
}

WorkloadTrace SmallTrace() {
  TraceOptions options;
  options.num_conversations = 15;
  options.conversation_rate = 0.5;
  options.mean_think_time = 10.0;
  options.seed = 4;
  return WorkloadTrace(ShareGptProfile(), options);
}

TEST(TelemetryTest, StepTraceRecordsEveryIteration) {
  GpuCostModel model(Opt13BConfig(), A100Spec(1));
  WorkloadTrace trace = SmallTrace();
  auto engine = MakeEngine(SystemKind::kPensieve, model);
  std::vector<StepTraceEntry> steps;
  DriverOptions options;
  options.step_trace = &steps;
  ServingSummary summary = RunServingExperiment(engine.get(), trace, options);
  ASSERT_FALSE(steps.empty());
  EXPECT_EQ(static_cast<int64_t>(steps.size()), summary.engine_stats.steps);
  // Steps are time-ordered, have positive durations and nonzero batches.
  double prev_start = -1.0;
  int64_t total_finished = 0;
  for (const StepTraceEntry& e : steps) {
    EXPECT_GT(e.start, prev_start - 1e-12);
    prev_start = e.start;
    EXPECT_GT(e.duration, 0.0);
    EXPECT_GT(e.batch_requests, 0);
    EXPECT_GE(e.batch_tokens, e.batch_requests);  // >= one token per request
    total_finished += e.finished;
  }
  EXPECT_EQ(total_finished, summary.completed_requests);
}

TEST(TelemetryTest, StepTraceSummaryAggregates) {
  std::vector<StepTraceEntry> trace = {
      {0.0, 0.1, 2, 20, 0},
      {0.1, 0.3, 4, 40, 1},
  };
  StepTraceSummary summary = SummarizeStepTrace(trace);
  EXPECT_EQ(summary.steps, 2);
  EXPECT_DOUBLE_EQ(summary.mean_batch_requests, 3.0);
  EXPECT_DOUBLE_EQ(summary.mean_batch_tokens, 30.0);
  EXPECT_DOUBLE_EQ(summary.busy_seconds, 0.4);
  EXPECT_DOUBLE_EQ(summary.mean_step_seconds, 0.2);
}

TEST(TelemetryTest, SummaryOfEmptyTrace) {
  StepTraceSummary summary = SummarizeStepTrace({});
  EXPECT_EQ(summary.steps, 0);
  EXPECT_DOUBLE_EQ(summary.busy_seconds, 0.0);
}

TEST(TelemetryTest, StepTraceCsvRoundTrip) {
  std::vector<StepTraceEntry> trace = {{0.5, 0.25, 3, 99, 2}};
  const std::string path = TempPath("steps.csv");
  ASSERT_TRUE(WriteStepTraceCsv(path, trace).ok());
  const std::string contents = ReadAll(path);
  EXPECT_EQ(CountLines(contents), 2u);  // header + 1 row
  EXPECT_NE(contents.find("start_s,duration_s"), std::string::npos);
  EXPECT_NE(contents.find("0.5,0.25,3,99,2"), std::string::npos);
}

TEST(TelemetryTest, OutcomesCsvContainsReuseColumns) {
  GpuCostModel model(Opt13BConfig(), A100Spec(1));
  WorkloadTrace trace = SmallTrace();
  auto engine = MakeEngine(SystemKind::kPensieve, model);
  std::vector<RequestOutcome> outcomes;
  DriverOptions options;
  options.outcomes = &outcomes;
  ServingSummary summary = RunServingExperiment(engine.get(), trace, options);
  ASSERT_EQ(static_cast<int64_t>(outcomes.size()), summary.completed_requests);

  const std::string path = TempPath("outcomes.csv");
  ASSERT_TRUE(WriteOutcomesCsv(path, outcomes).ok());
  const std::string contents = ReadAll(path);
  EXPECT_EQ(CountLines(contents), outcomes.size() + 1);
  EXPECT_NE(contents.find("reused_gpu,reused_cpu,reused_ssd,reused_shared,recomputed"),
            std::string::npos);
}

TEST(TelemetryTest, PrefixSharingSummaryEmptyWithoutTraffic) {
  EngineStats stats;
  EXPECT_EQ(FormatPrefixSharingSummary(stats), "");
}

TEST(TelemetryTest, KvQuantSummaryEmptyWithoutQuantizedBlocks) {
  EngineStats stats;
  EXPECT_EQ(FormatKvQuantSummary(stats), "");
}

TEST(TelemetryTest, KvQuantSummaryFormatsBothLines) {
  EngineStats stats;
  stats.kv_quant_blocks = 42;
  stats.kv_quant_bytes_saved = 3 * 1000 * 1000;
  const std::string out = FormatKvQuantSummary(stats);
  EXPECT_NE(out.find("kv-quant-blocks:"), std::string::npos);
  EXPECT_NE(out.find("42 blocks int8-quantized"), std::string::npos);
  EXPECT_NE(out.find("kv-quant-bytes-saved:"), std::string::npos);
  EXPECT_NE(out.find("3.0 MB"), std::string::npos);
  EXPECT_EQ(CountLines(out), 2u);
}

TEST(TelemetryTest, StepTraceCsvCarriesWeightQuantColumn) {
  std::vector<StepTraceEntry> trace = {{0.5, 0.25, 3, 99, 2}};
  const std::string path = TempPath("steps_quant.csv");
  ASSERT_TRUE(WriteStepTraceCsv(path, trace, QuantMode::kInt8).ok());
  const std::string contents = ReadAll(path);
  EXPECT_NE(contents.find(",weight_quant\n"), std::string::npos);
  EXPECT_NE(contents.find("0.5,0.25,3,99,2,int8"), std::string::npos);
  // Default stays fp32 so existing callers keep a truthful column.
  ASSERT_TRUE(WriteStepTraceCsv(path, trace).ok());
  EXPECT_NE(ReadAll(path).find("0.5,0.25,3,99,2,fp32"), std::string::npos);
}

TEST(TelemetryTest, PrefixSharingSummaryFormatsAllLines) {
  EngineStats stats;
  stats.dedup_hit_requests = 7;
  stats.reused_shared_tokens = 448;
  stats.shared_attached_chunks = 14;
  stats.cow_copies = 3;
  stats.peak_shared_blocks = 6;
  stats.gpu_peak_allocated_blocks = 40;
  stats.kv_block_acquires = 100;
  stats.kv_block_releases = 90;
  stats.kv_blocks_live = 10;
  const std::string out = FormatPrefixSharingSummary(stats);
  EXPECT_NE(out.find("dedup-hits:"), std::string::npos);
  EXPECT_NE(out.find("7 requests attached 448 shared tokens (14 chunk views)"),
            std::string::npos);
  EXPECT_NE(out.find("shared-blocks:"), std::string::npos);
  EXPECT_NE(out.find("6 peak shared, 40 peak allocated"), std::string::npos);
  EXPECT_NE(out.find("100 acquires / 90 releases (10 live)"), std::string::npos);
  EXPECT_NE(out.find("cow-copies:        3 divergence copies"), std::string::npos);
  EXPECT_EQ(CountLines(out), 3u);
}

TEST(TelemetryTest, TemplateRunPopulatesReusedSharedColumn) {
  GpuCostModel model(Opt13BConfig(), A100Spec(1));
  TraceOptions trace_options;
  trace_options.num_conversations = 30;
  trace_options.conversation_rate = 0.5;
  trace_options.mean_think_time = 10.0;
  trace_options.seed = 4;
  trace_options.num_prefix_templates = 3;
  trace_options.prefix_len = 96;
  WorkloadTrace trace(ShareGptProfile(), trace_options);
  auto engine = MakeEngine(SystemKind::kPensieve, model);
  std::vector<RequestOutcome> outcomes;
  DriverOptions options;
  options.outcomes = &outcomes;
  ServingSummary summary = RunServingExperiment(engine.get(), trace, options);

  EXPECT_GT(summary.engine_stats.dedup_hit_requests, 0);
  int64_t shared_total = 0;
  for (const RequestOutcome& o : outcomes) {
    shared_total += o.reused_shared_tokens;
  }
  EXPECT_EQ(shared_total, summary.engine_stats.reused_shared_tokens);
  EXPECT_GT(shared_total, 0);

  const std::string summary_text = FormatPrefixSharingSummary(summary.engine_stats);
  EXPECT_NE(summary_text.find("dedup-hits:"), std::string::npos);

  // The per-request CSV carries the attach counts.
  const std::string path = TempPath("outcomes_shared.csv");
  ASSERT_TRUE(WriteOutcomesCsv(path, outcomes).ok());
  const std::string contents = ReadAll(path);
  EXPECT_NE(contents.find("reused_shared"), std::string::npos);
}

TEST(TelemetryTest, CsvWriteFailsOnBadPath) {
  EXPECT_FALSE(WriteStepTraceCsv("/nonexistent-dir/x.csv", {}).ok());
  EXPECT_FALSE(WriteOutcomesCsv("/nonexistent-dir/x.csv", {}).ok());
}

TEST(TelemetryTest, UnifiedSchedulingHasLargerDecodeBatches) {
  // The telemetry surfaces why unified scheduling wins (Figure 13): the
  // split-phase engine runs small prefill-only steps that stall decodes.
  GpuCostModel model(Llama2_13BConfig(), A100Spec(1));
  TraceOptions trace_options;
  trace_options.num_conversations = 60;
  trace_options.conversation_rate = 1.5;
  trace_options.mean_think_time = 10.0;
  WorkloadTrace trace(ShareGptProfile(), trace_options);

  auto run = [&](bool unified) {
    EngineOverrides overrides;
    overrides.unified_scheduling = unified;
    auto engine = MakeEngine(SystemKind::kPensieve, model, overrides);
    std::vector<StepTraceEntry> steps;
    DriverOptions options;
    options.step_trace = &steps;
    RunServingExperiment(engine.get(), trace, options);
    return SummarizeStepTrace(steps);
  };
  const StepTraceSummary unified = run(true);
  const StepTraceSummary split = run(false);
  // Split scheduling pays for extra small prefill-only kernels: the unified
  // engine finishes the same workload with less GPU busy time.
  EXPECT_LE(unified.busy_seconds, split.busy_seconds * 1.01);
}

}  // namespace
}  // namespace pensieve

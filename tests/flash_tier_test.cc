// Tests for the flash (simulated SSD) tier: the append-only segment log and
// its GC, the pluggable eviction-algorithm registry, the FlashTier facade,
// the TwoTierKvCache demote/promote mechanisms with checksum-based
// corruption degradation, the coordinator's CPU-pressure spill path, and
// engine-level determinism across thread counts with the tier enabled.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/core/experiment.h"
#include "src/eviction/policy.h"
#include "src/kvcache/flash/cache_algo.h"
#include "src/kvcache/flash/flash_tier.h"
#include "src/kvcache/flash/segment_log.h"
#include "src/kvcache/two_tier_cache.h"
#include "src/model/model_config.h"
#include "src/scheduler/cache_coordinator.h"
#include "src/serving/driver.h"
#include "src/sim/hardware.h"

namespace pensieve {
namespace {

const SegmentLog::RelocateFn kNoRelocate =
    [](uint64_t, FlashBlockId, FlashBlockId) {};

// --- SegmentLog --------------------------------------------------------------

TEST(SegmentLogTest, AppendTracksLiveness) {
  SegmentLog log({/*segment_blocks=*/2, /*num_segments=*/3});
  EXPECT_EQ(log.capacity_blocks(), 6);
  EXPECT_EQ(log.free_segments(), 3);
  for (uint64_t key = 1; key <= 3; ++key) {
    std::optional<FlashBlockId> b = log.Append(key, kNoRelocate);
    ASSERT_TRUE(b.has_value());
    EXPECT_TRUE(log.IsLive(*b));
    EXPECT_EQ(log.KeyAt(*b), key);
  }
  EXPECT_EQ(log.live_blocks(), 3);
  EXPECT_EQ(log.stats().user_appends, 3);
  EXPECT_DOUBLE_EQ(log.stats().WriteAmplification(), 1.0);
  // Segment 0 sealed (full), segment 1 open, segment 2 still free.
  EXPECT_EQ(log.free_segments(), 1);
}

TEST(SegmentLogTest, GcZeroLiveSegmentErasesWithoutMoves) {
  SegmentLog log({/*segment_blocks=*/2, /*num_segments=*/3});
  // Fill segment 0 (blocks 0,1) and seal it by spilling into segment 1.
  ASSERT_TRUE(log.Append(1, kNoRelocate).has_value());
  ASSERT_TRUE(log.Append(2, kNoRelocate).has_value());
  ASSERT_TRUE(log.Append(3, kNoRelocate).has_value());
  log.MarkDead(0);
  log.MarkDead(1);

  EXPECT_TRUE(log.GcOnce(kNoRelocate));
  EXPECT_EQ(log.stats().gc_runs, 1);
  EXPECT_EQ(log.stats().zero_live_erases, 1);
  EXPECT_EQ(log.stats().gc_moves, 0);  // nothing live to relocate
  EXPECT_EQ(log.live_blocks(), 1);
  EXPECT_EQ(log.free_segments(), 2);  // segment 0 reclaimed, segment 2 untouched
  EXPECT_DOUBLE_EQ(log.stats().WriteAmplification(), 1.0);
}

TEST(SegmentLogTest, GcUnderFullLogPressure) {
  // Two segments of four blocks, all eight live: even GC cannot make room,
  // so Append must refuse rather than corrupt the log.
  SegmentLog log({/*segment_blocks=*/4, /*num_segments=*/2});
  for (uint64_t key = 1; key <= 8; ++key) {
    ASSERT_TRUE(log.Append(key, kNoRelocate).has_value());
  }
  EXPECT_DOUBLE_EQ(log.Utilization(), 1.0);
  EXPECT_FALSE(log.Append(9, kNoRelocate).has_value());
  EXPECT_FALSE(log.GcOnce(kNoRelocate));  // best victim is fully live

  // Free two blocks in the sealed segment; the next append must reclaim it,
  // relocating the two surviving keys in slot order.
  log.MarkDead(0);  // key 1
  log.MarkDead(1);  // key 2
  std::vector<std::vector<uint64_t>> moves;
  const SegmentLog::RelocateFn record = [&moves](uint64_t key, FlashBlockId from,
                                                 FlashBlockId to) {
    moves.push_back({key, static_cast<uint64_t>(from), static_cast<uint64_t>(to)});
  };
  std::optional<FlashBlockId> b = log.Append(9, record);
  ASSERT_TRUE(b.has_value());
  ASSERT_EQ(moves.size(), 2u);
  // Keys 3 and 4 (blocks 2 and 3 of the erased segment) moved to the head
  // of the freshly reopened segment, preserving slot order.
  EXPECT_EQ(moves[0], (std::vector<uint64_t>{3, 2, 0}));
  EXPECT_EQ(moves[1], (std::vector<uint64_t>{4, 3, 1}));
  EXPECT_EQ(log.KeyAt(0), 3u);
  EXPECT_EQ(log.KeyAt(1), 4u);
  EXPECT_EQ(log.KeyAt(*b), 9u);
  EXPECT_EQ(log.stats().gc_moves, 2);
  EXPECT_EQ(log.stats().gc_runs, 1);
  EXPECT_EQ(log.stats().zero_live_erases, 0);
  EXPECT_EQ(log.live_blocks(), 7);
  // Write amplification: 9 user appends + 2 GC relocations.
  EXPECT_DOUBLE_EQ(log.stats().WriteAmplification(), 11.0 / 9.0);
}

// --- Algorithm registry ------------------------------------------------------

TEST(FlashAlgoRegistryTest, RoundTripsAllFourAlgorithms) {
  const std::vector<FlashAlgoKind> kinds = AllFlashAlgoKinds();
  ASSERT_EQ(kinds.size(), 4u);
  for (FlashAlgoKind kind : kinds) {
    const std::string name = FlashAlgoKindName(kind);
    FlashAlgoKind parsed;
    ASSERT_TRUE(FlashAlgoKindByName(name, &parsed)) << name;
    EXPECT_EQ(parsed, kind);
    std::unique_ptr<FlashCacheAlgo> algo = MakeFlashCacheAlgo(kind, 4);
    ASSERT_NE(algo, nullptr);
    EXPECT_EQ(algo->name(), name);
    EXPECT_EQ(algo->capacity(), 4);
    EXPECT_EQ(algo->size(), 0);
  }
  FlashAlgoKind parsed;
  EXPECT_FALSE(FlashAlgoKindByName("clock", &parsed));
  EXPECT_FALSE(FlashAlgoKindByName("LRU", &parsed));  // names are lowercase
}

// Admits `key` with every resident entry evictable, returning the victims.
std::vector<uint64_t> AdmitAll(FlashCacheAlgo* algo, uint64_t key) {
  std::vector<uint64_t> evicted;
  EXPECT_TRUE(algo->Admit(key, [](uint64_t) { return true; }, &evicted));
  return evicted;
}

TEST(FlashAlgoBehaviorTest, LruTouchSavesEntryFifoIgnoresIt) {
  // Same access sequence, divergent victims: a hit on the oldest entry
  // protects it under LRU but not under FIFO.
  for (const bool lru : {true, false}) {
    std::unique_ptr<FlashCacheAlgo> algo = MakeFlashCacheAlgo(
        lru ? FlashAlgoKind::kLru : FlashAlgoKind::kFifo, 2);
    AdmitAll(algo.get(), 1);
    AdmitAll(algo.get(), 2);
    algo->Touch(1);
    const std::vector<uint64_t> evicted = AdmitAll(algo.get(), 3);
    ASSERT_EQ(evicted.size(), 1u) << algo->name();
    EXPECT_EQ(evicted[0], lru ? 2u : 1u) << algo->name();
    EXPECT_EQ(algo->Contains(1), lru) << algo->name();
  }
}

TEST(FlashAlgoBehaviorTest, SieveVisitedBitGrantsSecondChance) {
  std::unique_ptr<FlashCacheAlgo> algo =
      MakeFlashCacheAlgo(FlashAlgoKind::kSieve, 2);
  AdmitAll(algo.get(), 1);
  AdmitAll(algo.get(), 2);
  algo->Touch(1);  // sets the visited bit, no reordering
  const std::vector<uint64_t> evicted = AdmitAll(algo.get(), 3);
  // The hand sweeps from the cold end: clears 1's visited bit, then evicts
  // the unvisited 2.
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], 2u);
  EXPECT_TRUE(algo->Contains(1));
}

TEST(FlashAlgoBehaviorTest, S3FifoGhostReadmissionEntersMainQueue) {
  // A key evicted and quickly re-admitted is recognized by the ghost FIFO
  // and lands in the protected main queue, where later one-hit-wonder
  // inserts cannot push it out. Under plain FIFO the same key is gone two
  // inserts after its re-admission.
  std::unique_ptr<FlashCacheAlgo> s3 =
      MakeFlashCacheAlgo(FlashAlgoKind::kS3Fifo, 2);
  std::unique_ptr<FlashCacheAlgo> fifo =
      MakeFlashCacheAlgo(FlashAlgoKind::kFifo, 2);
  for (FlashCacheAlgo* algo : {s3.get(), fifo.get()}) {
    AdmitAll(algo, 1);
    AdmitAll(algo, 2);
    EXPECT_EQ(AdmitAll(algo, 3), (std::vector<uint64_t>{1})) << algo->name();
    AdmitAll(algo, 1);  // re-admission: ghost hit for s3fifo
    AdmitAll(algo, 4);
    AdmitAll(algo, 5);
    EXPECT_LE(algo->size(), 2) << algo->name();
  }
  EXPECT_TRUE(s3->Contains(1));
  EXPECT_FALSE(fifo->Contains(1));
}

TEST(FlashAlgoBehaviorTest, AdmitFailsWhenEveryVictimIsPinned) {
  for (FlashAlgoKind kind : AllFlashAlgoKinds()) {
    std::unique_ptr<FlashCacheAlgo> algo = MakeFlashCacheAlgo(kind, 1);
    AdmitAll(algo.get(), 1);
    std::vector<uint64_t> evicted;
    EXPECT_FALSE(algo->Admit(2, [](uint64_t) { return false; }, &evicted))
        << algo->name();
    EXPECT_TRUE(algo->Contains(1)) << algo->name();
    EXPECT_FALSE(algo->Contains(2)) << algo->name();
  }
}

// --- FlashTier facade --------------------------------------------------------

TEST(FlashTierTest, KeyPackingRoundTrips) {
  const uint64_t key = FlashTier::MakeKey(/*conversation_id=*/1234567,
                                          /*chunk_index=*/789);
  EXPECT_EQ(FlashTier::KeyConversation(key), 1234567);
  EXPECT_EQ(FlashTier::KeyChunk(key), 789);
}

TEST(FlashTierTest, BlockIndexStaysConsistentAcrossGcChurn) {
  FlashTierConfig config;
  config.capacity_blocks = 8;
  config.segment_blocks = 4;
  config.algo = FlashAlgoKind::kLru;
  FlashTier tier(config);
  const auto evictable = [](uint64_t) { return true; };

  // Insert/erase churn well past the physical log capacity: odd keys die
  // right away while even keys linger, so GC victims hold a mix of live and
  // dead blocks and every collection relocates survivors. The key -> block
  // index must track each move.
  std::set<uint64_t> resident;
  for (uint64_t key = 1; key <= 40; ++key) {
    std::vector<uint64_t> evicted;
    ASSERT_TRUE(tier.Insert(key, evictable, &evicted));
    resident.insert(key);
    for (uint64_t victim : evicted) {
      resident.erase(victim);
    }
    if (key % 2 == 0) {
      tier.Erase(key - 1);
      resident.erase(key - 1);
    }
    for (uint64_t live : resident) {
      ASSERT_TRUE(tier.Contains(live)) << "key " << live << " after " << key;
      const FlashBlockId b = tier.BlockOf(live);
      ASSERT_NE(b, kInvalidFlashBlock);
      ASSERT_TRUE(tier.log().IsLive(b));
      ASSERT_EQ(tier.log().KeyAt(b), live);
    }
    ASSERT_EQ(tier.algo().size(), static_cast<int64_t>(resident.size()));
    ASSERT_EQ(tier.live_blocks(), static_cast<int64_t>(resident.size()));
  }
  EXPECT_GT(tier.log().stats().gc_runs, 0);
  EXPECT_GT(tier.log().stats().gc_moves, 0);
  EXPECT_GE(tier.log().stats().WriteAmplification(), 1.0);
  EXPECT_LE(tier.log().Utilization(), 1.0);
  EXPECT_EQ(tier.BlockOf(12345), kInvalidFlashBlock);
}

TEST(FlashTierTest, InsertEvictsAndKillsVictimBlock) {
  FlashTierConfig config;
  config.capacity_blocks = 2;
  config.segment_blocks = 2;
  FlashTier tier(config);
  const auto evictable = [](uint64_t) { return true; };
  std::vector<uint64_t> evicted;
  ASSERT_TRUE(tier.Insert(1, evictable, &evicted));
  ASSERT_TRUE(tier.Insert(2, evictable, &evicted));
  const FlashBlockId victim_block = tier.BlockOf(1);
  ASSERT_TRUE(tier.Insert(3, evictable, &evicted));
  EXPECT_EQ(evicted, (std::vector<uint64_t>{1}));
  EXPECT_FALSE(tier.Contains(1));
  EXPECT_FALSE(tier.log().IsLive(victim_block));
  EXPECT_EQ(tier.live_blocks(), 2);
}

// --- TwoTierKvCache demote / promote ----------------------------------------

KvCacheConfig NumericFlashConfig() {
  KvCacheConfig config;
  config.block_size = 4;
  config.num_gpu_blocks = 4;
  config.num_cpu_blocks = 4;
  config.num_ssd_blocks = 8;
  config.numeric = true;
  config.num_layers = 1;
  config.num_kv_heads = 2;
  config.head_dim = 2;
  return config;
}

// Moves chunk `i` of conversation `id` to the CPU tier.
void MoveToCpu(TwoTierKvCache* cache, ConversationId id, int64_t i) {
  ASSERT_TRUE(cache->SwapOut(id, i).ok());
  ASSERT_TRUE(cache->ReclaimGpu(id, i).ok());
}

TEST(FlashCacheTest, NumericDemotePromoteRoundTripPreservesBytes) {
  TwoTierKvCache cache(NumericFlashConfig());
  std::vector<ContextState::SlotRef> slots;
  ASSERT_TRUE(cache.AppendTokenSlots(1, 8, &slots).ok());
  // Distinct bytes per token so any misrouted copy is visible.
  for (int64_t t = 0; t < 8; ++t) {
    std::vector<float> k(4, 1.0f + static_cast<float>(t));
    std::vector<float> v(4, -1.0f - static_cast<float>(t));
    cache.gpu_pool()->WriteToken(slots[static_cast<size_t>(t)].block, 0,
                                 slots[static_cast<size_t>(t)].slot, k.data(),
                                 v.data());
  }
  MoveToCpu(&cache, 1, 0);
  ASSERT_TRUE(cache.DemoteToFlash(1, 0).ok());
  EXPECT_TRUE(cache.Find(1)->chunk(0).OnSsd());
  EXPECT_EQ(cache.counters().demoted_to_flash_chunks, 1);
  EXPECT_TRUE(cache.VerifySsdChecksum(1, 0).ok());
  cache.CheckInvariants();

  ASSERT_TRUE(cache.PromoteFromFlash(1, 0).ok());
  EXPECT_EQ(cache.Find(1)->chunk(0).location, ChunkLocation::kCpu);
  EXPECT_EQ(cache.counters().promoted_from_flash_chunks, 1);
  ASSERT_TRUE(cache.SwapIn(1, 0).ok());
  const BlockId gpu_block = cache.Find(1)->chunk(0).gpu_block;
  for (int64_t t = 0; t < 4; ++t) {
    EXPECT_FLOAT_EQ(cache.gpu_pool()->TokenData(gpu_block, 0, 0, t)[0],
                    1.0f + static_cast<float>(t));
    EXPECT_FLOAT_EQ(cache.gpu_pool()->TokenData(gpu_block, 0, 1, t)[3],
                    -1.0f - static_cast<float>(t));
  }
  cache.CheckInvariants();
}

TEST(FlashCacheTest, SsdCorruptionDegradesToRecompute) {
  TwoTierKvCache cache(NumericFlashConfig());
  ASSERT_TRUE(cache.AppendTokenSlots(1, 8, nullptr).ok());
  MoveToCpu(&cache, 1, 0);
  ASSERT_TRUE(cache.DemoteToFlash(1, 0).ok());
  ASSERT_TRUE(cache.MarkSsdCorrupt(1, 0).ok());

  EXPECT_EQ(cache.VerifySsdChecksum(1, 0).code(), StatusCode::kDataLoss);
  // A corrupted flash copy must never flow back toward the GPU: the promote
  // fails and leaves the chunk where it was.
  EXPECT_EQ(cache.PromoteFromFlash(1, 0).code(), StatusCode::kDataLoss);
  EXPECT_TRUE(cache.Find(1)->chunk(0).OnSsd());
  EXPECT_GT(cache.counters().checksum_failures, 0);

  // The degradation path: drop the poisoned chunk and restore it as a
  // recompute target.
  ASSERT_TRUE(cache.DropChunk(1, 0).ok());
  ASSERT_TRUE(cache.RestoreDropped(1, 0).ok());
  EXPECT_EQ(cache.Find(1)->chunk(0).location, ChunkLocation::kGpu);
  cache.CheckInvariants();
}

TEST(FlashCacheTest, DemoteRequiresContiguousFlashPrefix) {
  TwoTierKvCache cache(NumericFlashConfig());
  ASSERT_TRUE(cache.AppendTokenSlots(1, 8, nullptr).ok());
  MoveToCpu(&cache, 1, 0);
  MoveToCpu(&cache, 1, 1);
  // Demoting chunk 1 while chunk 0 still holds a CPU copy would break the
  // [dropped][ssd][cpu/gpu] layout that prefix drops rely on.
  EXPECT_EQ(cache.DemoteToFlash(1, 1).code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(cache.DemoteToFlash(1, 0).ok());
  EXPECT_TRUE(cache.DemoteToFlash(1, 1).ok());
  EXPECT_EQ(cache.Find(1)->SsdChunks().size(), 2u);
  cache.CheckInvariants();
}

TEST(FlashCacheTest, FlashEvictionDropsVictimAsPrefix) {
  KvCacheConfig config;
  config.block_size = 4;
  config.num_gpu_blocks = 8;
  config.num_cpu_blocks = 8;
  config.num_ssd_blocks = 2;  // room for exactly two chunks
  TwoTierKvCache cache(config);
  ASSERT_TRUE(cache.AppendTokenSlots(1, 8, nullptr).ok());
  ASSERT_TRUE(cache.AppendTokenSlots(2, 4, nullptr).ok());
  MoveToCpu(&cache, 1, 0);
  MoveToCpu(&cache, 1, 1);
  MoveToCpu(&cache, 2, 0);
  ASSERT_TRUE(cache.DemoteToFlash(1, 0).ok());
  ASSERT_TRUE(cache.DemoteToFlash(1, 1).ok());

  // The third demotion overflows the tier; LRU evicts conversation 1's
  // oldest flash chunk, which comes back as a dropped prefix.
  ASSERT_TRUE(cache.DemoteToFlash(2, 0).ok());
  EXPECT_TRUE(cache.Find(2)->chunk(0).OnSsd());
  EXPECT_EQ(cache.counters().flash_evicted_chunks, 1);
  EXPECT_EQ(cache.counters().flash_evicted_tokens, 4);
  EXPECT_TRUE(cache.Find(1)->chunk(0).Dropped());
  EXPECT_TRUE(cache.Find(1)->chunk(1).OnSsd());
  cache.CheckInvariants();
}

// --- Coordinator spill -------------------------------------------------------

TEST(CoordinatorSpillTest, CpuPressureDemotesInsteadOfDropping) {
  KvCacheConfig config;
  config.block_size = 4;
  config.num_gpu_blocks = 8;
  config.num_cpu_blocks = 2;
  config.num_ssd_blocks = 8;
  TwoTierKvCache cache(config);
  LruPolicy policy;
  CacheCoordinator::Options options;
  options.use_ssd_cache = true;
  CacheCoordinator coordinator(&cache, &policy, options);

  ASSERT_TRUE(cache.AppendTokenSlots(1, 8, nullptr).ok());
  MoveToCpu(&cache, 1, 0);
  MoveToCpu(&cache, 1, 1);
  ASSERT_EQ(cache.cpu_allocator().num_free(), 0);

  EXPECT_TRUE(coordinator.EnsureFreeCpuBlocks(1, /*now=*/1.0));
  EXPECT_GE(cache.cpu_allocator().num_free(), 1);
  // The victim went to flash, not to the floor.
  EXPECT_EQ(cache.counters().demoted_to_flash_chunks, 1);
  EXPECT_EQ(cache.counters().dropped_chunks, 0);
  EXPECT_TRUE(cache.Find(1)->chunk(0).OnSsd());

  CacheCoordinator::SpillOutcome spill = coordinator.TakeSpill();
  EXPECT_EQ(spill.demoted_tokens, 4);
  ASSERT_EQ(spill.demoted.size(), 1u);
  EXPECT_EQ(spill.demoted[0].first, 1);
  EXPECT_EQ(spill.demoted[0].second, 0);
  // TakeSpill drains: a second call reports nothing.
  EXPECT_EQ(coordinator.TakeSpill().demoted_tokens, 0);
  cache.CheckInvariants();
}

// --- Engine-level determinism and accounting --------------------------------

class FlashEngineTest : public ::testing::Test {
 protected:
  void TearDown() override { ThreadPool::SetGlobalThreads(0); }

  static WorkloadTrace SmallTrace() {
    TraceOptions options;
    options.num_conversations = 16;
    options.conversation_rate = 1.0;
    options.mean_think_time = 10.0;
    options.seed = 11;
    return WorkloadTrace(ShareGptProfile(), options);
  }

  // Small caches so the trace spills through all three tiers: the GPU still
  // fits the longest conversation (otherwise the trace is unserveable and
  // the driver aborts) but the CPU tier is far below the working set.
  static EngineOverrides FlashOverrides() {
    EngineOverrides overrides;
    overrides.cache_scale = 0.1;
    overrides.cpu_cache_scale = 0.02;
    overrides.ssd_capacity_gb = 8.0;
    return overrides;
  }

  static ServingSummary Run(const EngineOverrides& overrides) {
    const GpuCostModel cost_model(Opt13BConfig(), A100Spec(1));
    std::unique_ptr<Engine> engine =
        MakeEngine(SystemKind::kPensieve, cost_model, overrides);
    return RunServingExperiment(engine.get(), SmallTrace());
  }

  // Byte-exact digest of everything the serving layer reports.
  static std::string Fingerprint(const ServingSummary& s) {
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "c=%lld gen=%lld p99=%.17g mean=%.17g mk=%.17g aot=%lld forced=%lld "
        "dropped=%lld rec=%lld dem=%lld prom=%lld ev=%lld hits=%lld "
        "wa=%.17g gc=%lld",
        static_cast<long long>(s.completed_requests),
        static_cast<long long>(s.engine_stats.generated_tokens),
        s.p99_normalized_latency, s.mean_normalized_latency, s.makespan,
        static_cast<long long>(s.engine_stats.aot_swap_out_tokens),
        static_cast<long long>(s.engine_stats.forced_swap_out_tokens),
        static_cast<long long>(s.engine_stats.dropped_tokens),
        static_cast<long long>(s.engine_stats.recomputed_history_tokens),
        static_cast<long long>(s.engine_stats.ssd_demoted_chunks),
        static_cast<long long>(s.engine_stats.ssd_promoted_chunks),
        static_cast<long long>(s.engine_stats.ssd_evicted_chunks),
        static_cast<long long>(s.engine_stats.reused_ssd_tokens),
        s.engine_stats.SsdWriteAmplification(),
        static_cast<long long>(s.engine_stats.ssd_gc_moves));
    return buf;
  }
};

TEST_F(FlashEngineTest, BitIdenticalAcrossThreadCountsWithFlashEnabled) {
  ThreadPool::SetGlobalThreads(1);
  const ServingSummary at1 = Run(FlashOverrides());
  // The run must actually exercise the tier, or the determinism claim is
  // vacuous.
  ASSERT_GT(at1.engine_stats.ssd_demoted_chunks, 0);
  ThreadPool::SetGlobalThreads(8);
  const ServingSummary at8 = Run(FlashOverrides());
  EXPECT_EQ(Fingerprint(at1), Fingerprint(at8));
}

TEST_F(FlashEngineTest, FlashAccountingStaysBalanced) {
  const ServingSummary s = Run(FlashOverrides());
  const EngineStats& st = s.engine_stats;
  // Every chunk that left the tier was either promoted back, evicted by the
  // algorithm, or is still resident; nothing double-counts.
  EXPECT_GE(st.ssd_demoted_chunks,
            st.ssd_promoted_chunks + st.ssd_evicted_chunks);
  EXPECT_GE(st.SsdWriteAmplification(), 1.0);
  EXPECT_GE(st.reused_ssd_tokens, 0);
  EXPECT_EQ(st.ssd_demoted_chunks, st.ssd_user_blocks_written);
}

TEST_F(FlashEngineTest, SsdCapacityZeroDisablesTheTierEntirely) {
  EngineOverrides overrides = FlashOverrides();
  overrides.ssd_capacity_gb = 0.0;
  const ServingSummary s = Run(overrides);
  EXPECT_EQ(s.engine_stats.ssd_demoted_chunks, 0);
  EXPECT_EQ(s.engine_stats.ssd_promoted_chunks, 0);
  EXPECT_EQ(s.engine_stats.ssd_evicted_chunks, 0);
  EXPECT_EQ(s.engine_stats.reused_ssd_tokens, 0);
}

}  // namespace
}  // namespace pensieve

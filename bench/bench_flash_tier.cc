// Flash-tier serving benchmark: three-tier GPU -> CPU -> SSD KV cache.
//
// Two experiments over the same workload generator:
//
//  1. Conversation-set sweep. Replays traces of increasing conversation
//     count with the flash tier off and on. While the working set fits the
//     CPU tier the two configurations match; once it spills, the flash-off
//     build recomputes evicted history while the flash build promotes it
//     back over the simulated SSD link, and tail TTFT (p99 of
//     first-scheduled minus arrival) separates.
//
//  2. Algorithm comparison. The largest trace replayed under each flash
//     eviction/indexing algorithm (lru, fifo, s3fifo, sieve) with
//     per-algorithm SSD miss rate, write amplification and GC relocations.
//     The tier is exclusive (a promote removes the flash copy), so entries
//     are never re-referenced while resident and the recency families
//     legitimately converge on conversational traces; the ghost-queue
//     algorithm (s3fifo) is the one that can diverge. The table makes that
//     measurable rather than assumed.
//
// Self-checks (always on; --smoke only shrinks the workload):
//   * --ssd-capacity 0 is bit-identical to the flash-off build: same
//     completions, same per-request schedule times, same step count;
//   * the flash tier never drops a request: every configuration completes
//     exactly the flash-off request count;
//   * repeated runs are deterministic: same trace + same algorithm twice
//     gives identical engine stats;
//   * flash accounting: promoted + evicted <= demoted chunks, write-amp
//     >= 1, SSD hit rate in [0, 1].
// Any violation fails the binary, which makes the ctest --smoke entry a
// real test.
//
// Emits machine-readable JSON (default BENCH_flash.json): one entry per
// (sweep point x flash setting) and one per algorithm.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_serving_common.h"
#include "src/common/flags.h"
#include "src/common/stats.h"
#include "src/serving/driver.h"
#include "src/serving/pensieve_engine.h"

namespace pensieve {
namespace {

struct RunResult {
  ServingSummary summary;
  double p99_ttft = 0.0;
  double mean_ttft = 0.0;
};

RunResult RunOnce(const GpuCostModel& cost_model, const DatasetProfile& profile,
                  const TraceOptions& trace_options,
                  const EngineOverrides& overrides) {
  const WorkloadTrace trace(profile, trace_options);
  auto engine = MakeEngine(SystemKind::kPensieve, cost_model, overrides);
  std::vector<RequestOutcome> outcomes;
  DriverOptions driver;
  driver.outcomes = &outcomes;
  RunResult result;
  result.summary = RunServingExperiment(engine.get(), trace, driver);
  SampleStats ttft;
  for (const RequestOutcome& o : outcomes) {
    ttft.Add(o.first_scheduled_time - o.request.arrival_time);
  }
  if (!ttft.empty()) {
    result.p99_ttft = ttft.Percentile(0.99);
    result.mean_ttft = ttft.Mean();
  }
  return result;
}

// Stats fields that must be reproducible run-to-run; used both for the
// determinism self-check and the ssd-capacity-0 equivalence check.
std::string StatsFingerprint(const ServingSummary& s) {
  const EngineStats& e = s.engine_stats;
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "completed=%lld steps=%lld generated=%lld prefill=%lld "
      "reused_gpu=%lld reused_cpu=%lld reused_ssd=%lld recomputed=%lld "
      "demoted=%lld promoted=%lld evicted=%lld user_blocks=%lld "
      "gc_moves=%lld gc_runs=%lld busy=%.9e makespan=%.9e",
      static_cast<long long>(s.completed_requests),
      static_cast<long long>(e.steps),
      static_cast<long long>(e.generated_tokens),
      static_cast<long long>(e.prefill_tokens),
      static_cast<long long>(e.reused_gpu_tokens),
      static_cast<long long>(e.reused_cpu_tokens),
      static_cast<long long>(e.reused_ssd_tokens),
      static_cast<long long>(e.recomputed_history_tokens),
      static_cast<long long>(e.ssd_demoted_chunks),
      static_cast<long long>(e.ssd_promoted_chunks),
      static_cast<long long>(e.ssd_evicted_chunks),
      static_cast<long long>(e.ssd_user_blocks_written),
      static_cast<long long>(e.ssd_gc_moves),
      static_cast<long long>(e.ssd_gc_runs), e.busy_seconds, s.makespan);
  return buf;
}

double SsdMissRate(const EngineStats& e) {
  const double misses = static_cast<double>(e.recomputed_history_tokens);
  const double hits = static_cast<double>(e.reused_ssd_tokens);
  if (hits + misses == 0.0) {
    return 0.0;
  }
  return misses / (hits + misses);
}

int Run(int argc, char** argv) {
  FlagParser flags;
  flags.AddString("model", "opt-66b",
                  "model preset: opt-13b, opt-66b, llama2-13b, llama2-70b");
  flags.AddString("dataset", "sharegpt",
                  "workload profile: sharegpt or ultrachat");
  flags.AddDouble("rate", 1.5, "conversation arrival rate (conversations/s)");
  flags.AddDouble("think", 60.0, "mean user think time (s)");
  flags.AddInt("seed", 42, "workload seed");
  flags.AddDouble("cache_scale", 0.3,
                  "GPU+CPU cache scale; must keep the GPU larger than the "
                  "longest conversation");
  flags.AddDouble("cpu-scale", 0.3,
                  "extra CPU-tier multiplier; sets the working-set size at "
                  "which the sweep crosses into flash territory");
  flags.AddDouble("ssd-capacity", 128.0, "flash tier capacity in GiB");
  flags.AddInt("ssd-segment-blocks", 64, "blocks per flash log segment");
  flags.AddString("kv-quant", "off",
                  "int8 KV in the CPU/SSD tiers (on/off): the same byte "
                  "budget holds ~2x the blocks, so ~2x the conversations "
                  "stay resident per GB");
  flags.AddString("json", "BENCH_flash.json", "output JSON path");
  flags.AddBool("smoke", false, "CI-sized run: one small sweep point");
  flags.AddBool("help", false, "print usage");
  ConsumeThreadsFlag(&argc, argv);
  Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n\nflags:\n%s", status.ToString().c_str(),
                 flags.Help().c_str());
    return 2;
  }
  if (flags.GetBool("help")) {
    std::printf("bench_flash_tier: three-tier KV cache benchmark\n\nflags:\n%s",
                flags.Help().c_str());
    return 0;
  }
  const bool smoke = flags.GetBool("smoke");

  ModelConfig model;
  if (!ModelConfigByName(flags.GetString("model"), &model)) {
    std::fprintf(stderr, "unknown model '%s'\n",
                 flags.GetString("model").c_str());
    return 2;
  }
  const DatasetProfile profile = flags.GetString("dataset") == "ultrachat"
                                     ? UltraChatProfile()
                                     : ShareGptProfile();
  const GpuCostModel cost_model(model, A100Spec(model.num_gpus));

  EngineOverrides base;
  base.cache_scale = flags.GetDouble("cache_scale");
  base.cpu_cache_scale = flags.GetDouble("cpu-scale");
  if (smoke) {
    // A CI-sized trace fits the paper-scale CPU tier; shrink it so the
    // smoke run still exercises demotes, promotes and flash GC.
    base.cpu_cache_scale = std::min(base.cpu_cache_scale, 0.02);
  }
  base.ssd_segment_blocks = flags.GetInt("ssd-segment-blocks");
  const double ssd_gb = flags.GetDouble("ssd-capacity");
  const std::string kv_quant_flag = flags.GetString("kv-quant");
  if (kv_quant_flag != "on" && kv_quant_flag != "off") {
    std::fprintf(stderr, "--kv-quant must be 'on' or 'off', got '%s'\n",
                 kv_quant_flag.c_str());
    return 2;
  }
  base.kv_quant = kv_quant_flag == "on";

  TraceOptions trace_options;
  trace_options.conversation_rate = flags.GetDouble("rate");
  trace_options.mean_think_time = flags.GetDouble("think");
  trace_options.seed = static_cast<uint64_t>(flags.GetInt("seed"));

  const std::vector<int64_t> sweep_sizes =
      smoke ? std::vector<int64_t>{12}
            : std::vector<int64_t>{15, BenchConversations(60),
                                   BenchConversations(150)};
  int failures = 0;
  std::vector<std::string> json_entries;

  // ---- 0. KV-quant capacity check (always on) ----------------------------
  // The CPU/SSD budgets are byte-denominated: with int8 KV the same budget
  // must hold >= 1.8x the blocks, which is >= 1.8x the conversations
  // resident per GB (mean conversation footprint is workload-invariant).
  // Measured on freshly built engines, so this checks what the serving
  // stack actually sizes, not flag arithmetic.
  {
    EngineOverrides fp16 = base;
    fp16.kv_quant = false;
    fp16.ssd_capacity_gb = ssd_gb;
    EngineOverrides int8 = base;
    int8.kv_quant = true;
    int8.ssd_capacity_gb = ssd_gb;
    const auto engine_fp16 = MakeEngine(SystemKind::kPensieve, cost_model, fp16);
    const auto engine_int8 = MakeEngine(SystemKind::kPensieve, cost_model, int8);
    const auto* p_fp16 = dynamic_cast<const PensieveEngine*>(engine_fp16.get());
    const auto* p_int8 = dynamic_cast<const PensieveEngine*>(engine_int8.get());
    const int64_t cpu_blocks_fp16 = p_fp16->cache().cpu_allocator().num_free();
    const int64_t cpu_blocks_int8 = p_int8->cache().cpu_allocator().num_free();
    const double capacity_ratio =
        cpu_blocks_fp16 > 0
            ? static_cast<double>(cpu_blocks_int8) /
                  static_cast<double>(cpu_blocks_fp16)
            : 0.0;
    std::printf("kv-quant capacity: cpu tier %ld blocks (fp16) -> %ld blocks "
                "(int8) at the same byte budget = %.2fx conversations per GB\n",
                static_cast<long>(cpu_blocks_fp16),
                static_cast<long>(cpu_blocks_int8), capacity_ratio);
    char entry[256];
    std::snprintf(entry, sizeof(entry),
                  "{\"phase\": \"kv_quant_capacity\", \"cpu_blocks_fp16\": "
                  "%ld, \"cpu_blocks_int8\": %ld, \"capacity_ratio\": %.4f}",
                  static_cast<long>(cpu_blocks_fp16),
                  static_cast<long>(cpu_blocks_int8), capacity_ratio);
    json_entries.push_back(entry);
    if (capacity_ratio < 1.8) {
      std::fprintf(stderr,
                   "FAIL kv-quant capacity ratio %.3f < 1.8 (fp16 %ld vs "
                   "int8 %ld cpu blocks)\n",
                   capacity_ratio, static_cast<long>(cpu_blocks_fp16),
                   static_cast<long>(cpu_blocks_int8));
      ++failures;
    }
  }

  // ---- 1. Conversation-set sweep: flash off vs on ------------------------
  std::printf("==== flash-tier sweep (%s, %s, cache x%.2f, cpu x%.2f, ssd "
              "%.0f GiB) ====\n",
              model.name.c_str(), flags.GetString("dataset").c_str(),
              base.cache_scale, base.cpu_cache_scale, ssd_gb);
  std::printf("%-7s %-6s %9s %12s %12s %12s %9s %9s %12s\n", "convs", "flash",
              "completed", "p99_ttft_ms", "mean_ttft_ms", "p99 ms/tok",
              "hit_rate", "ssd_hit", "recomputed");
  for (int64_t convs : sweep_sizes) {
    trace_options.num_conversations = convs;
    RunResult off;
    for (int flash = 0; flash <= 1; ++flash) {
      EngineOverrides overrides = base;
      overrides.ssd_capacity_gb = flash ? ssd_gb : 0.0;
      overrides.ssd_algo = FlashAlgoKind::kLru;
      const RunResult r =
          RunOnce(cost_model, profile, trace_options, overrides);
      const EngineStats& e = r.summary.engine_stats;
      std::printf("%-7ld %-6s %9ld %12.1f %12.1f %12.1f %9.3f %9.3f %12ld\n",
                  static_cast<long>(convs), flash ? "on" : "off",
                  static_cast<long>(r.summary.completed_requests),
                  r.p99_ttft * 1e3, r.mean_ttft * 1e3,
                  r.summary.p99_normalized_latency * 1e3, e.CacheHitRate(),
                  e.SsdCacheHitRate(),
                  static_cast<long>(e.recomputed_history_tokens));
      char entry[512];
      std::snprintf(
          entry, sizeof(entry),
          "{\"phase\": \"sweep\", \"conversations\": %ld, \"flash\": %d, "
          "\"completed\": %ld, \"p99_ttft_s\": %.6e, \"mean_ttft_s\": %.6e, "
          "\"p99_norm_latency_s\": %.6e, \"cache_hit_rate\": %.4f, "
          "\"ssd_hit_rate\": %.4f, \"recomputed_tokens\": %ld, "
          "\"ssd_write_amp\": %.4f}",
          static_cast<long>(convs), flash,
          static_cast<long>(r.summary.completed_requests), r.p99_ttft,
          r.mean_ttft, r.summary.p99_normalized_latency, e.CacheHitRate(),
          e.SsdCacheHitRate(),
          static_cast<long>(e.recomputed_history_tokens),
          e.SsdWriteAmplification());
      json_entries.push_back(entry);

      if (flash == 0) {
        off = r;
        // Self-check: --ssd-capacity 0 is the flash-off build. A second run
        // through the num_ssd_blocks=0 engine must reproduce it exactly.
        EngineOverrides zero = base;
        zero.ssd_capacity_gb = 0.0;
        const RunResult z =
            RunOnce(cost_model, profile, trace_options, zero);
        if (StatsFingerprint(z.summary) != StatsFingerprint(r.summary)) {
          std::fprintf(stderr,
                       "FAIL convs=%ld: ssd-capacity=0 diverged from the "
                       "flash-off build\n  off:  %s\n  zero: %s\n",
                       static_cast<long>(convs),
                       StatsFingerprint(r.summary).c_str(),
                       StatsFingerprint(z.summary).c_str());
          ++failures;
        }
      } else {
        // Self-check: the flash tier trades latency, never requests.
        if (r.summary.completed_requests != off.summary.completed_requests) {
          std::fprintf(stderr,
                       "FAIL convs=%ld: flash-on completed %ld != flash-off "
                       "%ld\n",
                       static_cast<long>(convs),
                       static_cast<long>(r.summary.completed_requests),
                       static_cast<long>(off.summary.completed_requests));
          ++failures;
        }
        // Self-check: flash accounting identities.
        if (e.ssd_promoted_chunks + e.ssd_evicted_chunks >
                e.ssd_demoted_chunks ||
            e.SsdWriteAmplification() < 1.0 || e.SsdCacheHitRate() < 0.0 ||
            e.SsdCacheHitRate() > 1.0) {
          std::fprintf(stderr,
                       "FAIL convs=%ld: flash accounting identity violated "
                       "(%lld promoted + %lld evicted vs %lld demoted, "
                       "write-amp %.3f)\n",
                       static_cast<long>(convs),
                       static_cast<long long>(e.ssd_promoted_chunks),
                       static_cast<long long>(e.ssd_evicted_chunks),
                       static_cast<long long>(e.ssd_demoted_chunks),
                       e.SsdWriteAmplification());
          ++failures;
        }
      }
    }
  }

  // ---- 2. Algorithm comparison at the largest sweep point ----------------
  trace_options.num_conversations = sweep_sizes.back();
  const struct {
    FlashAlgoKind kind;
    const char* name;
  } kAlgos[] = {{FlashAlgoKind::kLru, "lru"},
                {FlashAlgoKind::kFifo, "fifo"},
                {FlashAlgoKind::kS3Fifo, "s3fifo"},
                {FlashAlgoKind::kSieve, "sieve"}};
  std::printf("\n==== flash algorithms (%ld conversations, same trace) ====\n",
              static_cast<long>(sweep_sizes.back()));
  std::printf("%-8s %9s %10s %10s %10s %10s %10s\n", "algo", "completed",
              "miss_rate", "write_amp", "gc_moves", "evicted", "promoted");
  for (const auto& algo : kAlgos) {
    EngineOverrides overrides = base;
    overrides.ssd_capacity_gb = ssd_gb;
    overrides.ssd_algo = algo.kind;
    const RunResult r = RunOnce(cost_model, profile, trace_options, overrides);
    const EngineStats& e = r.summary.engine_stats;
    std::printf("%-8s %9ld %10.4f %10.3f %10ld %10ld %10ld\n", algo.name,
                static_cast<long>(r.summary.completed_requests),
                SsdMissRate(e), e.SsdWriteAmplification(),
                static_cast<long>(e.ssd_gc_moves),
                static_cast<long>(e.ssd_evicted_chunks),
                static_cast<long>(e.ssd_promoted_chunks));
    char entry[384];
    std::snprintf(entry, sizeof(entry),
                  "{\"phase\": \"algo\", \"algo\": \"%s\", \"completed\": "
                  "%ld, \"miss_rate\": %.4f, \"write_amp\": %.4f, "
                  "\"gc_moves\": %ld, \"gc_runs\": %ld, \"evicted_chunks\": "
                  "%ld, \"promoted_chunks\": %ld}",
                  algo.name, static_cast<long>(r.summary.completed_requests),
                  SsdMissRate(e), e.SsdWriteAmplification(),
                  static_cast<long>(e.ssd_gc_moves),
                  static_cast<long>(e.ssd_gc_runs),
                  static_cast<long>(e.ssd_evicted_chunks),
                  static_cast<long>(e.ssd_promoted_chunks));
    json_entries.push_back(entry);

    // Self-check: the same trace through the same algorithm twice is
    // deterministic (checked once, on the first algorithm).
    if (&algo == &kAlgos[0]) {
      const RunResult again =
          RunOnce(cost_model, profile, trace_options, overrides);
      if (StatsFingerprint(again.summary) != StatsFingerprint(r.summary)) {
        std::fprintf(stderr,
                     "FAIL algo=%s: repeated run diverged\n  1st: %s\n  "
                     "2nd: %s\n",
                     algo.name, StatsFingerprint(r.summary).c_str(),
                     StatsFingerprint(again.summary).c_str());
        ++failures;
      }
    }
  }

  const std::string json_path = flags.GetString("json");
  std::ofstream out(json_path, std::ios::trunc);
  if (!out.is_open()) {
    std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    return 1;
  }
  out << BenchJsonHeader("flash_tier") << "  \"model\": \"" << model.name
      << "\",\n  \"kv_quant\": " << (base.kv_quant ? "true" : "false")
      << ",\n  \"smoke\": " << (smoke ? "true" : "false")
      << ",\n  \"entries\": [\n";
  for (size_t i = 0; i < json_entries.size(); ++i) {
    out << "    " << json_entries[i]
        << (i + 1 < json_entries.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  out.close();
  std::printf("\nwrote %s\n", json_path.c_str());

  if (failures > 0) {
    return 1;
  }
  std::printf("self-checks held: ssd-capacity-0 bit-identical, no dropped "
              "requests, deterministic replay, accounting balanced\n");
  return 0;
}

}  // namespace
}  // namespace pensieve

int main(int argc, char** argv) { return pensieve::Run(argc, argv); }

// GEMM benchmark: naive MatMulTransposedB vs the prepacked cache-blocked
// GEMM (src/tensor/packed_matrix.h), fp32 and int8, on the projection
// shapes of the paper's models (Table 1). Two regimes:
//   * prefill — m = --prefill_m activation rows (default 512);
//   * decode  — m in --decode_ms (default 1,2,4,8), where the packed GEMM
//     takes the panel-partitioned GEMV path so m = 1 still uses every
//     thread. A --gemv_threads sweep records how that path scales for both
//     weight formats.
//
// The quantized entries double as an accuracy gate: every int8 timing shape
// first compares its output against the fp32 packed result and the run
// fails if the relative error exceeds --int8_gate (a perplexity proxy —
// logit-scale weight error feeds the final projection directly).
//
// Emits machine-readable JSON (default BENCH_gemm.json): one entry per
// (model, shape, m, impl, threads) with seconds per call, GFLOP/s, tokens/s
// and weight bytes streamed per token. --smoke shrinks the sweep for CI.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_serving_common.h"
#include "src/common/flags.h"
#include "src/common/logging.h"
#include "src/common/thread_pool.h"
#include "src/model/model_config.h"
#include "src/tensor/ops.h"
#include "src/tensor/packed_matrix.h"
#include "src/tensor/tensor.h"

namespace pensieve {
namespace {

struct GemmShape {
  const char* name;  // which projection this is
  int64_t n;         // output features (weight rows)
  int64_t k;         // input features (weight cols)
};

std::vector<GemmShape> ModelShapes(const ModelConfig& config) {
  const int64_t qkv_out =
      (config.num_heads + 2 * config.num_kv_heads) * config.head_dim;
  return {
      {"qkv_proj", qkv_out, config.hidden_size},
      {"attn_out", config.hidden_size, config.num_heads * config.head_dim},
      {"ffn_up", config.ffn_hidden, config.hidden_size},
      {"ffn_down", config.hidden_size, config.ffn_hidden},
  };
}

struct Entry {
  std::string model;
  std::string shape;
  std::string impl;
  int64_t m, k, n;
  int threads;
  double seconds;  // per call
  double gflops;
  double tokens_per_s;
  // Weight bytes a token's GEMV must stream from memory: the decode regime
  // is bandwidth-bound, so this is the quantity int8 weights halve+.
  double bytes_streamed_per_token = 0.0;
};

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Times fn, repeating until the total exceeds min_time (one rep minimum),
// and returns seconds per call.
template <typename Fn>
double TimePerCall(const Fn& fn, double min_time) {
  fn();  // warm caches and the thread-pool dispatch path
  int64_t reps = 0;
  const double start = Now();
  double elapsed = 0.0;
  do {
    fn();
    ++reps;
    elapsed = Now() - start;
  } while (elapsed < min_time);
  return elapsed / static_cast<double>(reps);
}

std::vector<int64_t> ParseIntList(const std::string& csv) {
  std::vector<int64_t> out;
  std::string cur;
  for (char c : csv + ",") {
    if (c == ',') {
      if (!cur.empty()) {
        out.push_back(std::strtoll(cur.c_str(), nullptr, 10));
        cur.clear();
      }
    } else {
      cur += c;
    }
  }
  return out;
}

std::vector<std::string> ParseStringList(const std::string& csv) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : csv + ",") {
    if (c == ',') {
      if (!cur.empty()) {
        out.push_back(cur);
        cur.clear();
      }
    } else {
      cur += c;
    }
  }
  return out;
}

Entry MakeEntry(const std::string& model, const GemmShape& shape,
                const std::string& impl, int64_t m, int threads, double seconds,
                int64_t weight_bytes) {
  Entry e;
  e.model = model;
  e.shape = shape.name;
  e.impl = impl;
  e.m = m;
  e.k = shape.k;
  e.n = shape.n;
  e.threads = threads;
  e.seconds = seconds;
  e.gflops = 2.0 * static_cast<double>(m) * static_cast<double>(shape.k) *
             static_cast<double>(shape.n) / seconds / 1e9;
  e.tokens_per_s = static_cast<double>(m) / seconds;
  // Every token of the batch streams the whole operand once (the microkernel
  // reuses a weight panel across the batch's rows, so per-token traffic
  // shrinks as m grows).
  e.bytes_streamed_per_token =
      static_cast<double>(weight_bytes) / static_cast<double>(m);
  return e;
}

// Relative L-inf error of the int8 path against the fp32 packed result on
// this shape — a perplexity proxy (the same weights feed the final logit
// projection). Returns the error; the caller gates on it.
double Int8RelError(const Tensor& a, const PackedMatrix& fp32,
                    const PackedMatrix& int8) {
  Tensor ref({a.dim(0), fp32.out_dim()});
  Tensor got({a.dim(0), int8.out_dim()});
  MatMulPackedInto(a, fp32, &ref);
  MatMulPackedInto(a, int8, &got);
  float max_abs = 0.0f;
  float max_delta = 0.0f;
  for (int64_t i = 0; i < ref.numel(); ++i) {
    max_abs = std::max(max_abs, std::fabs(ref.data()[i]));
    max_delta = std::max(max_delta, std::fabs(ref.data()[i] - got.data()[i]));
  }
  return max_abs > 0.0f ? static_cast<double>(max_delta) / max_abs : 0.0;
}

void WriteJson(const std::string& path, const std::vector<Entry>& entries) {
  FILE* f = std::fopen(path.c_str(), "w");
  PENSIEVE_CHECK(f != nullptr) << "cannot open " << path;
  std::fprintf(f, "%s  \"entries\": [\n", BenchJsonHeader("gemm").c_str());
  for (size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    std::fprintf(f,
                 "    {\"model\": \"%s\", \"shape\": \"%s\", \"impl\": \"%s\", "
                 "\"m\": %lld, \"k\": %lld, \"n\": %lld, \"threads\": %d, "
                 "\"seconds_per_call\": %.6e, \"gflops\": %.3f, "
                 "\"tokens_per_s\": %.1f, \"bytes_streamed_per_token\": %.1f}%s\n",
                 e.model.c_str(), e.shape.c_str(), e.impl.c_str(),
                 static_cast<long long>(e.m), static_cast<long long>(e.k),
                 static_cast<long long>(e.n), e.threads, e.seconds, e.gflops,
                 e.tokens_per_s, e.bytes_streamed_per_token,
                 i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu entries)\n", path.c_str(), entries.size());
}

int Run(int argc, char** argv) {
  FlagParser flags;
  flags.AddString("json", "BENCH_gemm.json", "output JSON path");
  flags.AddString("models", "opt-13b,llama2-13b", "comma-separated presets");
  flags.AddInt("prefill_m", 512, "activation rows for the prefill regime");
  flags.AddString("decode_ms", "1,2,4,8", "batch sizes for the decode regime");
  flags.AddString("gemv_threads", "1,2,4,8",
                  "thread counts for the m=1 scaling sweep");
  flags.AddInt("threads", 0, "pool size for the main sections (0 = default)");
  flags.AddDouble("min_time", 0.2, "min seconds of timing per measurement");
  flags.AddBool("smoke", false, "CI-sized run: tiny m, one model, short sweep");
  flags.AddString("weight-quant", "both",
                  "which weight formats to sweep: fp32, int8, or both");
  flags.AddDouble("int8_gate", 0.02,
                  "max relative L-inf error of the int8 path vs fp32 before "
                  "the run fails (accuracy self-check)");
  const Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.message().c_str(), flags.Help().c_str());
    return 1;
  }

  int64_t prefill_m = flags.GetInt("prefill_m");
  std::vector<int64_t> decode_ms = ParseIntList(flags.GetString("decode_ms"));
  std::vector<int64_t> gemv_threads = ParseIntList(flags.GetString("gemv_threads"));
  std::vector<std::string> models = ParseStringList(flags.GetString("models"));
  double min_time = flags.GetDouble("min_time");
  if (flags.GetBool("smoke")) {
    prefill_m = 16;
    decode_ms = {1, 4};
    gemv_threads = {1, 2};
    models = {"opt-13b"};
    min_time = 0.02;
  }
  if (flags.GetInt("threads") > 0) {
    ThreadPool::SetGlobalThreads(static_cast<int>(flags.GetInt("threads")));
  }
  const int threads = ThreadPool::Global().num_threads();
  const std::string quant_sweep = flags.GetString("weight-quant");
  PENSIEVE_CHECK(quant_sweep == "fp32" || quant_sweep == "int8" ||
                 quant_sweep == "both")
      << "unknown --weight-quant '" << quant_sweep << "' (fp32, int8, both)";
  const bool run_fp32 = quant_sweep != "int8";
  const bool run_int8 = quant_sweep != "fp32";
  const double int8_gate = flags.GetDouble("int8_gate");
  double worst_int8_error = 0.0;

  std::vector<Entry> entries;
  for (const std::string& model_name : models) {
    ModelConfig config;
    PENSIEVE_CHECK(ModelConfigByName(model_name, &config))
        << "unknown model " << model_name;
    for (const GemmShape& shape : ModelShapes(config)) {
      Tensor w({shape.n, shape.k});
      FillNormal(w, 1, 0.02f);
      const PackedMatrix packed(w);
      const PackedMatrix packed_int8(w, QuantMode::kInt8);
      const int64_t naive_bytes =
          shape.n * shape.k * static_cast<int64_t>(sizeof(float));
      Tensor a({prefill_m, shape.k});
      FillNormal(a, 2, 1.0f);
      Tensor c({prefill_m, shape.n});
      std::printf("%s %s [n=%lld k=%lld] ...\n", model_name.c_str(), shape.name,
                  static_cast<long long>(shape.n), static_cast<long long>(shape.k));
      if (run_int8) {
        // Accuracy gate before any timing on this shape.
        Tensor probe({8, shape.k});
        FillNormal(probe, 6, 1.0f);
        const double err = Int8RelError(probe, packed, packed_int8);
        worst_int8_error = std::max(worst_int8_error, err);
        PENSIEVE_CHECK(err <= int8_gate)
            << shape.name << " int8 rel error " << err << " exceeds gate "
            << int8_gate;
      }
      // Prefill regime.
      if (run_fp32) {
        const double naive_s =
            TimePerCall([&] { MatMulTransposedB(a, w); }, min_time);
        entries.push_back(MakeEntry(model_name, shape, "naive", prefill_m,
                                    threads, naive_s, naive_bytes));
        const double packed_s =
            TimePerCall([&] { MatMulPackedInto(a, packed, &c); }, min_time);
        entries.push_back(MakeEntry(model_name, shape, "packed", prefill_m,
                                    threads, packed_s, packed.PackedBytes()));
        std::printf("  prefill m=%lld: naive %.2f GFLOP/s, packed %.2f GFLOP/s "
                    "(%.2fx)\n",
                    static_cast<long long>(prefill_m),
                    entries[entries.size() - 2].gflops, entries.back().gflops,
                    naive_s / packed_s);
      }
      if (run_int8) {
        const double int8_s =
            TimePerCall([&] { MatMulPackedInto(a, packed_int8, &c); }, min_time);
        entries.push_back(MakeEntry(model_name, shape, "packed_int8", prefill_m,
                                    threads, int8_s, packed_int8.PackedBytes()));
        std::printf("  prefill m=%lld: packed_int8 %.2f GFLOP/s\n",
                    static_cast<long long>(prefill_m), entries.back().gflops);
      }
      // Decode regime.
      for (int64_t m : decode_ms) {
        Tensor ad({m, shape.k});
        FillNormal(ad, 3, 1.0f);
        Tensor cd({m, shape.n});
        if (run_fp32) {
          const double dn =
              TimePerCall([&] { MatMulTransposedB(ad, w); }, min_time);
          entries.push_back(
              MakeEntry(model_name, shape, "naive", m, threads, dn, naive_bytes));
          const double dp =
              TimePerCall([&] { MatMulPackedInto(ad, packed, &cd); }, min_time);
          entries.push_back(MakeEntry(model_name, shape, "packed", m, threads,
                                      dp, packed.PackedBytes()));
        }
        if (run_int8) {
          const double dq = TimePerCall(
              [&] { MatMulPackedInto(ad, packed_int8, &cd); }, min_time);
          entries.push_back(MakeEntry(model_name, shape, "packed_int8", m,
                                      threads, dq, packed_int8.PackedBytes()));
        }
      }
    }
    // m = 1 GEMV thread-scaling sweep on the model's largest projection,
    // fp32 vs int8: the decode path is bandwidth-bound, so the int8 panels'
    // halved stream should show up directly as tokens/s.
    const GemmShape gemv_shape = ModelShapes(config)[2];  // ffn_up
    Tensor w({gemv_shape.n, gemv_shape.k});
    FillNormal(w, 4, 0.02f);
    const PackedMatrix packed(w);
    const PackedMatrix packed_int8(w, QuantMode::kInt8);
    Tensor a({1, gemv_shape.k});
    FillNormal(a, 5, 1.0f);
    Tensor c({1, gemv_shape.n});
    for (int64_t t : gemv_threads) {
      ThreadPool::SetGlobalThreads(static_cast<int>(t));
      double fp32_tps = 0.0;
      if (run_fp32) {
        const double s =
            TimePerCall([&] { MatMulPackedInto(a, packed, &c); }, min_time);
        entries.push_back(MakeEntry(model_name, gemv_shape, "packed_gemv", 1,
                                    static_cast<int>(t), s, packed.PackedBytes()));
        fp32_tps = entries.back().tokens_per_s;
      }
      if (run_int8) {
        const double s = TimePerCall(
            [&] { MatMulPackedInto(a, packed_int8, &c); }, min_time);
        entries.push_back(MakeEntry(model_name, gemv_shape, "packed_int8_gemv",
                                    1, static_cast<int>(t), s,
                                    packed_int8.PackedBytes()));
        if (fp32_tps > 0.0) {
          std::printf("  gemv m=1 threads=%lld: fp32 %.1f tok/s, int8 %.1f "
                      "tok/s (%.2fx)\n",
                      static_cast<long long>(t), fp32_tps,
                      entries.back().tokens_per_s,
                      entries.back().tokens_per_s / fp32_tps);
        } else {
          std::printf("  gemv m=1 threads=%lld: int8 %.1f tokens/s\n",
                      static_cast<long long>(t), entries.back().tokens_per_s);
        }
      } else {
        std::printf("  gemv m=1 threads=%lld: %.1f tokens/s\n",
                    static_cast<long long>(t), fp32_tps);
      }
    }
    ThreadPool::SetGlobalThreads(
        flags.GetInt("threads") > 0 ? static_cast<int>(flags.GetInt("threads")) : 0);
  }

  if (run_int8) {
    std::printf("int8 self-check: max rel error %.5f (gate %.3f)\n",
                worst_int8_error, int8_gate);
  }
  WriteJson(flags.GetString("json"), entries);
  return 0;
}

}  // namespace
}  // namespace pensieve

int main(int argc, char** argv) { return pensieve::Run(argc, argv); }

// Figure 10: end-to-end serving performance on 1 GPU.
//
// Normalized p90 latency vs throughput for OPT-13B and Llama 2-13B on the
// ShareGPT and UltraChat workloads, comparing Pensieve, Pensieve (GPU
// cache), vLLM and TensorRT-LLM. Each system gets 40 GB of GPU KV cache
// (paper §6.1); user think time is 60 s.
//
// Expected shape (paper §6.2): TRT-LLM > vLLM throughout (dense-operator
// fusion); Pensieve beats both once conversations return (its prefills skip
// the cached history); the gap is larger on ShareGPT (more turns per
// conversation) and larger for Llama 2-13B (GQA stores 4x more KV tokens).

#include "bench_serving_common.h"
#include "bench/bench_serving_common.h"
#include "src/model/model_config.h"
#include "src/sim/hardware.h"

namespace pensieve {
namespace {

void RunFigure10() {
  const std::vector<double> rates = {0.25, 0.5, 1.0, 1.5, 2.0, 3.0};
  const std::vector<SystemKind> systems = {
      SystemKind::kPensieve, SystemKind::kPensieveGpuOnly, SystemKind::kVllm,
      SystemKind::kTensorRtLlm};
  SweepOptions options;
  options.num_conversations = BenchConversations();
  options.mean_think_time = 60.0;

  const HardwareSpec hw = A100Spec(1);
  for (const ModelConfig& model : {Opt13BConfig(), Llama2_13BConfig()}) {
    const GpuCostModel cost_model(model, hw);
    for (const DatasetProfile& profile : {ShareGptProfile(), UltraChatProfile()}) {
      RunSystemsSweep("Figure 10: " + model.name + " / " + profile.name +
                          " (1 GPU, think=60s)",
                      cost_model, profile, systems, rates, options);
    }
  }
}

}  // namespace
}  // namespace pensieve

int main(int argc, char** argv) {
  pensieve::ConsumeThreadsFlag(&argc, argv);
  pensieve::RunFigure10();
  return 0;
}

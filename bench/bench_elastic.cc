// Elastic replica set benchmark (DESIGN.md §14).
//
// Three experiments plus a chaos soak:
//
//  * Sick replica: a replica degrades (probes fail) for a window and then
//    hard-fails. With probing off the crash is the first signal — every
//    request still homed there re-routes reactively and all its KV dies.
//    With probing on the replica is quarantined while still alive, its
//    conversations drain over the NIC ahead of the crash, and the crash
//    itself finds less to destroy.
//
//  * Flash crowd: a diurnal trace whose arrivals compress into a burst
//    (1 -> N -> 1 demand). A fixed-small cluster misses the TTFT SLO
//    through the burst; autoscaling grows the active set into it and
//    retires replicas afterwards, recovering most of the fixed-large SLO
//    attainment at a fraction of the replica-seconds.
//
//  * Peer spill: CPU tiers sized below the working set. Without spill an
//    overloaded replica's CPU-tier evictions drop straight to recompute;
//    with spill they park in a peer's idle CPU tier and come back over the
//    NIC on next use.
//
// Self-checks (always on; a violation exits nonzero, so the --smoke ctest
// entry is a real test):
//  * every variant completes every request — quarantine, drain, scale-down
//    and spill faults degrade to recompute, never drop;
//  * probe accounting identity: probes_sent == probes_ok + probes_failed;
//  * spill accounting identity: spilled == fetched + degraded
//    + invalidated + remaining;
//  * NIC fault-injection identity: injected == recovered + unrecovered;
//  * probe-quarantine beats hard-fail-only on crash-time damage
//    (re-routed requests + KV tokens lost);
//  * autoscaling improves TTFT SLO attainment over the fixed-small
//    cluster and actually scales both directions.
//
// --chaos runs the soak alone (CI runs it under ASan/UBSan): randomized
// NIC/PCIe/SSD fault schedule + probe loss + a sick window + a mid-run
// crash/recover + autoscaling + peer spill, all seeded, with the no-drop
// and identity checks enforced.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_serving_common.h"
#include "src/cluster/cluster_driver.h"
#include "src/model/model_config.h"
#include "src/sim/hardware.h"

namespace pensieve {
namespace {

void Fail(const char* what) {
  std::fprintf(stderr, "FAIL: %s\n", what);
  std::exit(1);
}

struct VariantResult {
  std::string name;
  ClusterSummary summary;
  std::vector<RequestOutcome> outcomes;
  double slo_attainment = 0.0;  // flash-crowd variants only
};

VariantResult RunVariant(const std::string& name,
                         const GpuCostModel& cost_model,
                         const WorkloadTrace& trace, ClusterOptions options,
                         const EngineOverrides& overrides) {
  VariantResult result;
  result.name = name;
  options.outcomes = &result.outcomes;
  result.summary = RunClusterExperiment(
      [&](int32_t replica_id) {
        EngineOverrides replica_overrides = overrides;
        replica_overrides.fault_seed =
            overrides.fault_seed +
            0x9E3779B9ull * static_cast<uint64_t>(replica_id + 1);
        return MakeEngine(SystemKind::kPensieve, cost_model, replica_overrides);
      },
      trace, options);
  return result;
}

void CheckIdentities(const VariantResult& v, int64_t expected_completed) {
  if (v.summary.cluster.completed_requests != expected_completed) {
    std::fprintf(stderr, "FAIL: %s completed %ld of %ld requests\n",
                 v.name.c_str(),
                 static_cast<long>(v.summary.cluster.completed_requests),
                 static_cast<long>(expected_completed));
    std::exit(1);
  }
  const HealthStats& h = v.summary.elastic.health;
  if (h.probes_sent != h.probes_ok + h.probes_failed) {
    Fail("probe accounting identity violated (sent != ok + failed)");
  }
  const PeerSpillStats& p = v.summary.elastic.peer_spill;
  if (p.spilled_tokens != p.fetched_tokens + p.degraded_tokens +
                              p.invalidated_tokens + p.remaining_tokens) {
    Fail("peer-spill accounting identity violated");
  }
  const LinkFaultStats& nic = v.summary.nic_link_faults;
  if (nic.injected_timeouts + nic.injected_partials + nic.injected_corruptions !=
      nic.recovered_faults + nic.unrecovered_faults) {
    Fail("NIC fault accounting identity violated");
  }
}

// ---------------------------------------------------------------------------
// Sick replica: probe-quarantine vs hard-fail-only.

VariantResult RunSick(const std::string& name, const GpuCostModel& cost_model,
                      const WorkloadTrace& trace, bool probe, double sick_begin,
                      double fail_time, double recover_time) {
  ClusterOptions options;
  options.num_replicas = 3;
  options.router.policy = RouterPolicy::kSessionAffinity;
  options.router.min_overload_tokens = 64;
  options.router.overload_factor = 1.1;
  options.fault_seed = 1234;
  options.faults.push_back({fail_time, 1, /*recover=*/false});
  options.faults.push_back({recover_time, 1, /*recover=*/true});
  if (probe) {
    options.elastic.health.enabled = true;
    options.elastic.health.probe_interval = 1.0;
    options.elastic.health.sick.push_back({1, sick_begin, fail_time});
  }
  EngineOverrides overrides;
  overrides.cache_scale = 0.5;
  overrides.fault_seed = 1234;
  return RunVariant(name, cost_model, trace, options, overrides);
}

// ---------------------------------------------------------------------------
// Flash crowd: fixed-small vs autoscale vs fixed-large.

double Ttft(const RequestOutcome& o) {
  return o.first_token_time - o.request.arrival_time;
}

double SloAttainment(const std::vector<RequestOutcome>& outcomes, double slo) {
  if (outcomes.empty()) {
    return 0.0;
  }
  int64_t ok = 0;
  for (const RequestOutcome& o : outcomes) {
    if (Ttft(o) <= slo) {
      ++ok;
    }
  }
  return static_cast<double>(ok) / static_cast<double>(outcomes.size());
}

VariantResult RunCrowd(const std::string& name, const GpuCostModel& cost_model,
                       const WorkloadTrace& trace, int32_t replicas,
                       bool autoscale, int32_t max_replicas) {
  ClusterOptions options;
  options.num_replicas = replicas;
  options.router.policy = RouterPolicy::kLeastLoaded;
  options.fault_seed = 99;
  if (autoscale) {
    options.elastic.autoscale.enabled = true;
    options.elastic.autoscale.min_replicas = 1;
    options.elastic.autoscale.max_replicas = max_replicas;
    options.elastic.autoscale.check_interval = 2.0;
    options.elastic.autoscale.cooldown = 6.0;
    options.elastic.autoscale.up_queue_tokens = 1536;
    options.elastic.autoscale.down_queue_tokens = 256;
  }
  EngineOverrides overrides;
  overrides.cache_scale = 0.5;
  overrides.fault_seed = 99;
  return RunVariant(name, cost_model, trace, options, overrides);
}

// ---------------------------------------------------------------------------
// Peer spill: CPU tiers below the working set, spill off vs on.

// Skewed tiers: replica 0's CPU tier is sized far below its share of the
// working set while its peers have idle CPU budget — the regime where
// parking evictions at a peer beats recomputing them.
VariantResult RunSpill(const std::string& name, const GpuCostModel& cost_model,
                       const WorkloadTrace& trace, bool spill) {
  ClusterOptions options;
  options.num_replicas = 3;
  options.router.policy = RouterPolicy::kSessionAffinity;
  options.fault_seed = 7;
  options.elastic.peer_spill.enabled = spill;
  VariantResult result;
  result.name = name;
  options.outcomes = &result.outcomes;
  result.summary = RunClusterExperiment(
      [&](int32_t replica_id) {
        EngineOverrides overrides;
        overrides.cache_scale = 0.15;
        overrides.cpu_cache_scale = replica_id == 0 ? 0.15 : 2.0;
        overrides.fault_seed =
            7 + 0x9E3779B9ull * static_cast<uint64_t>(replica_id + 1);
        overrides.peer_spill = spill;
        return MakeEngine(SystemKind::kPensieve, cost_model, overrides);
      },
      trace, options);
  return result;
}

// ---------------------------------------------------------------------------
// Chaos soak: everything at once under a randomized fault schedule.

VariantResult RunChaos(const GpuCostModel& cost_model,
                       const WorkloadTrace& trace, uint64_t seed) {
  ClusterOptions options;
  options.num_replicas = 3;
  options.router.policy = RouterPolicy::kSessionAffinity;
  options.router.min_overload_tokens = 64;
  options.router.overload_factor = 1.1;
  options.fault_seed = seed;
  options.nic_fault_profile.timeout_rate = 0.15;
  options.nic_fault_profile.partial_rate = 0.1;
  options.nic_fault_profile.corruption_rate = 0.1;
  options.fault_retry.max_attempts = 2;
  options.faults.push_back({40.0, 0, /*recover=*/false});
  options.faults.push_back({80.0, 0, /*recover=*/true});
  options.elastic.health.enabled = true;
  options.elastic.health.probe_interval = 0.5;
  options.elastic.health.probe_faults.timeout_rate = 0.1;
  options.elastic.health.sick.push_back({2, 30.0, 55.0});
  options.elastic.autoscale.enabled = true;
  options.elastic.autoscale.min_replicas = 2;
  options.elastic.autoscale.max_replicas = 3;
  options.elastic.autoscale.check_interval = 2.0;
  options.elastic.autoscale.cooldown = 5.0;
  options.elastic.autoscale.up_queue_tokens = 1024;
  options.elastic.autoscale.down_queue_tokens = 128;
  options.elastic.peer_spill.enabled = true;
  EngineOverrides overrides;
  overrides.cache_scale = 0.15;
  overrides.cpu_cache_scale = 0.25;
  overrides.ssd_capacity_gb = 0.5;
  overrides.fault_seed = seed;
  overrides.peer_spill = true;
  overrides.pcie_fault_profile.timeout_rate = 0.05;
  overrides.pcie_fault_profile.corruption_rate = 0.05;
  overrides.ssd_fault_profile.timeout_rate = 0.05;
  overrides.ssd_fault_profile.corruption_rate = 0.05;
  return RunVariant("chaos seed=" + std::to_string(seed), cost_model, trace,
                    options, overrides);
}

int Main(int argc, char** argv) {
  const bool smoke = ConsumeSmokeFlag(&argc, argv);
  bool chaos_only = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--chaos") == 0) {
      chaos_only = true;
    }
  }

  const GpuCostModel cost_model(Opt13BConfig(), A100Spec(1));

  if (chaos_only) {
    TraceOptions chaos_options;
    chaos_options.num_conversations = BenchConversations(smoke ? 24 : 60);
    chaos_options.conversation_rate = 3.0;
    chaos_options.mean_think_time = 3.0;
    chaos_options.seed = 42;
    const WorkloadTrace chaos_trace(ShareGptProfile(), chaos_options);
    const int64_t expected = chaos_trace.TotalRequests();
    for (uint64_t seed : {1234ull, 77777ull}) {
      const VariantResult v = RunChaos(cost_model, chaos_trace, seed);
      CheckIdentities(v, expected);
      const ElasticStats& e = v.summary.elastic;
      std::printf("%-18s %ld req, %ld probes (%ld failed), %ld quarantines, "
                  "%ld up / %ld down, %ld spills, %ld KV lost\n",
                  v.name.c_str(),
                  static_cast<long>(v.summary.cluster.completed_requests),
                  static_cast<long>(e.health.probes_sent),
                  static_cast<long>(e.health.probes_failed),
                  static_cast<long>(e.health.quarantines),
                  static_cast<long>(e.autoscale.scale_ups),
                  static_cast<long>(e.autoscale.scale_downs),
                  static_cast<long>(e.peer_spill.spills),
                  static_cast<long>(v.summary.faults.lost_kv_tokens));
      if (e.health.probes_sent == 0) {
        Fail("chaos soak never probed");
      }
    }
    std::printf("chaos soak OK: every request completed under randomized "
                "NIC/PCIe/SSD faults + crash + quarantine + scaling + spill\n");
    return 0;
  }

  // ---- Sick replica ----
  TraceOptions sick_options;
  sick_options.num_conversations = BenchConversations(smoke ? 40 : 100);
  sick_options.conversation_rate = 4.0;
  sick_options.mean_think_time = 2.0;
  sick_options.seed = 42;
  const WorkloadTrace sick_trace(ShareGptProfile(), sick_options);
  const int64_t sick_expected = sick_trace.TotalRequests();

  const double sick_begin = 20.0;
  const double fail_time = 60.0;
  const double recover_time = 120.0;
  std::printf("==== Sick replica (degrades at %.0fs, crashes at %.0fs): "
              "probe-quarantine vs hard-fail-only ====\n",
              sick_begin, fail_time);
  std::printf("%-18s %-10s %-10s %-12s %-10s %-12s\n", "variant", "completed",
              "rerouted", "kv_lost", "drained", "drained_kv");
  VariantResult hard = RunSick("hard-fail only", cost_model, sick_trace,
                               /*probe=*/false, sick_begin, fail_time,
                               recover_time);
  VariantResult probed = RunSick("probe+quarantine", cost_model, sick_trace,
                                 /*probe=*/true, sick_begin, fail_time,
                                 recover_time);
  for (const VariantResult* v : {&hard, &probed}) {
    const FaultStats& f = v->summary.faults;
    const HealthStats& h = v->summary.elastic.health;
    std::printf("%-18s %-10ld %-10ld %-12ld %-10ld %-12ld\n", v->name.c_str(),
                static_cast<long>(v->summary.cluster.completed_requests),
                static_cast<long>(f.rerouted_requests),
                static_cast<long>(f.lost_kv_tokens),
                static_cast<long>(h.drained_requests),
                static_cast<long>(h.drained_kv_tokens));
    CheckIdentities(*v, sick_expected);
  }
  if (probed.summary.elastic.health.quarantines < 1) {
    Fail("sick replica was never quarantined");
  }
  if (probed.summary.elastic.health.drained_requests < 1) {
    Fail("quarantine drained no requests ahead of the crash");
  }
  const int64_t hard_damage = hard.summary.faults.rerouted_requests +
                              hard.summary.faults.lost_kv_tokens;
  const int64_t probed_damage = probed.summary.faults.rerouted_requests +
                                probed.summary.faults.lost_kv_tokens;
  if (probed_damage >= hard_damage) {
    Fail("probe-quarantine did not reduce crash-time damage "
         "(re-routed requests + KV tokens lost)");
  }

  // ---- Flash crowd ----
  TraceOptions crowd_options;
  crowd_options.num_conversations = BenchConversations(smoke ? 96 : 240);
  crowd_options.conversation_rate = 3.0;
  crowd_options.mean_think_time = 2.0;
  crowd_options.seed = 7;
  WorkloadTrace crowd_trace(ShareGptProfile(), crowd_options);
  // Diurnal warp with a flash crowd: off-peak arrivals stretch 1.5x, the
  // middle 40% of the arrival span compresses 10x into a burst.
  const double span = static_cast<double>(crowd_options.num_conversations) /
                      crowd_options.conversation_rate;
  const double burst_begin = 0.3 * span;
  const double burst_end = 0.7 * span;
  const double stretch = 1.5;
  const double compress = 10.0;
  crowd_trace.WarpFirstArrivals([&](double t) {
    if (t < burst_begin) {
      return t * stretch;
    }
    const double head = burst_begin * stretch;
    if (t < burst_end) {
      return head + (t - burst_begin) / compress;
    }
    return head + (burst_end - burst_begin) / compress +
           (t - burst_end) * stretch;
  });
  const int64_t crowd_expected = crowd_trace.TotalRequests();

  VariantResult fixed_small = RunCrowd("fixed-1", cost_model, crowd_trace,
                                       /*replicas=*/1, /*autoscale=*/false, 0);
  VariantResult scaled = RunCrowd("autoscale 1..4", cost_model, crowd_trace,
                                  /*replicas=*/4, /*autoscale=*/true, 4);
  VariantResult fixed_large = RunCrowd("fixed-4", cost_model, crowd_trace,
                                       /*replicas=*/4, /*autoscale=*/false, 0);
  // TTFT SLO anchored on the uncontended fixed-large cluster.
  std::vector<double> large_ttfts;
  large_ttfts.reserve(fixed_large.outcomes.size());
  for (const RequestOutcome& o : fixed_large.outcomes) {
    large_ttfts.push_back(Ttft(o));
  }
  std::sort(large_ttfts.begin(), large_ttfts.end());
  const double slo =
      std::max(0.1, 5.0 * large_ttfts[large_ttfts.size() / 2]);
  std::printf("\n==== Flash crowd (%.0fx burst mid-trace), TTFT SLO %.0f ms "
              "====\n",
              compress, slo * 1e3);
  std::printf("%-18s %-10s %-12s %-12s %-10s %-10s\n", "variant", "completed",
              "slo_attain", "p99ttft(ms)", "ups", "downs");
  for (VariantResult* v : {&fixed_small, &scaled, &fixed_large}) {
    v->slo_attainment = SloAttainment(v->outcomes, slo);
    const AutoscaleStats& a = v->summary.elastic.autoscale;
    std::printf("%-18s %-10ld %-12.3f %-12.1f %-10ld %-10ld\n",
                v->name.c_str(),
                static_cast<long>(v->summary.cluster.completed_requests),
                v->slo_attainment, v->summary.cluster.p99_ttft * 1e3,
                static_cast<long>(a.scale_ups),
                static_cast<long>(a.scale_downs));
    CheckIdentities(*v, crowd_expected);
  }
  if (scaled.summary.elastic.autoscale.scale_ups < 1 ||
      scaled.summary.elastic.autoscale.scale_downs < 1) {
    Fail("autoscaler never scaled both directions through the flash crowd");
  }
  if (scaled.slo_attainment <= fixed_small.slo_attainment) {
    Fail("autoscaling did not improve TTFT SLO attainment over the "
         "fixed-small cluster");
  }

  // ---- Peer spill ----
  TraceOptions spill_options;
  spill_options.num_conversations = BenchConversations(smoke ? 40 : 100);
  spill_options.conversation_rate = 4.0;
  spill_options.mean_think_time = 2.0;
  spill_options.seed = 21;
  const WorkloadTrace spill_trace(ShareGptProfile(), spill_options);
  const int64_t spill_expected = spill_trace.TotalRequests();

  std::printf("\n==== Peer spill (CPU tiers below working set) ====\n");
  std::printf("%-18s %-10s %-10s %-12s %-12s %-12s\n", "variant", "completed",
              "spills", "fetched_tok", "recomputed", "cpu_hit");
  VariantResult no_spill =
      RunSpill("spill off", cost_model, spill_trace, /*spill=*/false);
  VariantResult with_spill =
      RunSpill("spill on", cost_model, spill_trace, /*spill=*/true);
  for (const VariantResult* v : {&no_spill, &with_spill}) {
    const PeerSpillStats& p = v->summary.elastic.peer_spill;
    std::printf("%-18s %-10ld %-10ld %-12ld %-12ld %-12.3f\n", v->name.c_str(),
                static_cast<long>(v->summary.cluster.completed_requests),
                static_cast<long>(p.spills),
                static_cast<long>(p.fetched_tokens),
                static_cast<long>(
                    v->summary.cluster.engine_stats.recomputed_history_tokens),
                v->summary.cluster.engine_stats.CpuCacheHitRate());
    CheckIdentities(*v, spill_expected);
  }
  if (with_spill.summary.elastic.peer_spill.spills < 1) {
    Fail("peer spill never landed a transfer despite CPU pressure");
  }
  if (with_spill.summary.elastic.peer_spill.fetched_tokens < 1) {
    Fail("no spilled segment was ever fetched back");
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::trunc);
    out << BenchJsonHeader("elastic");
    const FaultStats& hf = hard.summary.faults;
    const FaultStats& pf = probed.summary.faults;
    const HealthStats& ph = probed.summary.elastic.health;
    out << "  \"sick_replica\": {\n"
        << "    \"hard_fail_only\": {\"completed\": "
        << hard.summary.cluster.completed_requests
        << ", \"rerouted\": " << hf.rerouted_requests
        << ", \"lost_kv_tokens\": " << hf.lost_kv_tokens << "},\n"
        << "    \"probe_quarantine\": {\"completed\": "
        << probed.summary.cluster.completed_requests
        << ", \"rerouted\": " << pf.rerouted_requests
        << ", \"lost_kv_tokens\": " << pf.lost_kv_tokens
        << ", \"quarantines\": " << ph.quarantines
        << ", \"drained_requests\": " << ph.drained_requests
        << ", \"drained_kv_tokens\": " << ph.drained_kv_tokens << "}\n"
        << "  },\n";
    out << "  \"flash_crowd\": {\n    \"slo_ttft_ms\": " << slo * 1e3
        << ",\n    \"variants\": [\n";
    const std::vector<const VariantResult*> crowd = {&fixed_small, &scaled,
                                                     &fixed_large};
    for (size_t i = 0; i < crowd.size(); ++i) {
      const VariantResult& v = *crowd[i];
      const AutoscaleStats& a = v.summary.elastic.autoscale;
      out << "      {\"name\": \"" << v.name
          << "\", \"completed\": " << v.summary.cluster.completed_requests
          << ", \"slo_attainment\": " << v.slo_attainment
          << ", \"p99_ttft_ms\": " << v.summary.cluster.p99_ttft * 1e3
          << ", \"scale_ups\": " << a.scale_ups
          << ", \"scale_downs\": " << a.scale_downs << "}"
          << (i + 1 < crowd.size() ? "," : "") << "\n";
    }
    out << "    ]\n  },\n";
    const PeerSpillStats& sp = with_spill.summary.elastic.peer_spill;
    out << "  \"peer_spill\": {\"spills\": " << sp.spills
        << ", \"spilled_tokens\": " << sp.spilled_tokens
        << ", \"fetched_tokens\": " << sp.fetched_tokens
        << ", \"degraded_tokens\": " << sp.degraded_tokens
        << ", \"invalidated_tokens\": " << sp.invalidated_tokens
        << ", \"remaining_tokens\": " << sp.remaining_tokens << "}\n";
    out << "}\n";
    if (!out.good()) {
      Fail("could not write JSON");
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace pensieve

int main(int argc, char** argv) {
  pensieve::ConsumeThreadsFlag(&argc, argv);
  return pensieve::Main(argc, argv);
}

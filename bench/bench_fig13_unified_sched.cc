// Figure 13: effect of unified scheduling — Pensieve with prefill and
// generation unified into one batch step versus the split-phase variant,
// Llama 2-13B on ShareGPT.
//
// Expected shape (paper §6.5): unified scheduling achieves better latency
// and throughput because prefills no longer run as separate small-batch
// kernel invocations that stall the decoding requests.

#include "bench_serving_common.h"
#include "bench/bench_serving_common.h"
#include "src/model/model_config.h"
#include "src/sim/hardware.h"

namespace pensieve {
namespace {

void RunFigure13() {
  const std::vector<double> rates = {0.5, 1.0, 1.5, 2.0, 3.0, 4.0};
  const GpuCostModel cost_model(Llama2_13BConfig(), A100Spec(1));
  SweepOptions options;
  options.num_conversations = BenchConversations();
  options.mean_think_time = 60.0;

  std::printf("==== Figure 13: unified vs split scheduling, llama2-13b / "
              "sharegpt ====\n");
  options.overrides.unified_scheduling = true;
  options.overrides.name_suffix = "-unified";
  PrintSweep("pensieve (unified scheduling)",
             RateSweep(SystemKind::kPensieve, cost_model, ShareGptProfile(), rates,
                       options));
  options.overrides.unified_scheduling = false;
  options.overrides.name_suffix = "-split";
  PrintSweep("pensieve (split prefill/decode)",
             RateSweep(SystemKind::kPensieve, cost_model, ShareGptProfile(), rates,
                       options));
}

}  // namespace
}  // namespace pensieve

int main(int argc, char** argv) {
  pensieve::ConsumeThreadsFlag(&argc, argv);
  pensieve::RunFigure13();
  return 0;
}

// Cluster routing-policy comparison.
//
// For N in {1, 2, 4} replicas, replays the same trace through each routing
// policy and tabulates throughput, tail latency, cluster cache-hit rate and
// migration traffic. The workload scales with the replica count (arrival
// rate and conversation count proportional to N) so every cluster size runs
// at comparable per-replica load; with 1 replica every policy degenerates to
// the single-engine experiment, which anchors the table.
//
// Accepts the pensieve_sim workload flags (--model, --dataset, --rate,
// --conversations, --think, --seed); --rate and --conversations set the
// per-replica baseline.

#include <cstdio>
#include <vector>

#include "bench_serving_common.h"
#include "src/cluster/cluster_driver.h"
#include "src/common/flags.h"
#include "src/workload/trace.h"

namespace pensieve {
namespace {

int Run(int argc, char** argv) {
  FlagParser flags;
  flags.AddString("model", "opt-13b",
                  "model preset: opt-13b, opt-66b, llama2-13b, llama2-70b");
  flags.AddString("dataset", "sharegpt",
                  "workload profile: sharegpt or ultrachat");
  flags.AddDouble("rate", 0.6, "per-replica conversation arrival rate");
  flags.AddInt("conversations", BenchConversations(300),
               "per-replica conversation count");
  flags.AddDouble("think", 20.0, "mean user think time (s)");
  flags.AddInt("seed", 42, "workload seed");
  flags.AddInt("threads", 0,
               "worker threads for kernels/GEMMs; 0 = PENSIEVE_THREADS env "
               "var, else hardware concurrency");
  flags.AddBool("help", false, "print usage");
  Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n\nflags:\n%s", status.ToString().c_str(),
                 flags.Help().c_str());
    return 2;
  }
  if (flags.GetBool("help")) {
    std::printf("bench_cluster_routing: routing-policy comparison\n\nflags:\n%s",
                flags.Help().c_str());
    return 0;
  }
  ThreadPool::SetGlobalThreads(static_cast<int>(flags.GetInt("threads")));

  ModelConfig model;
  if (!ModelConfigByName(flags.GetString("model"), &model)) {
    std::fprintf(stderr, "unknown model '%s'\n",
                 flags.GetString("model").c_str());
    return 2;
  }
  const DatasetProfile profile = flags.GetString("dataset") == "ultrachat"
                                     ? UltraChatProfile()
                                     : ShareGptProfile();
  const GpuCostModel cost_model(model, A100Spec(model.num_gpus));

  const RouterPolicy policies[] = {RouterPolicy::kRoundRobin,
                                   RouterPolicy::kLeastLoaded,
                                   RouterPolicy::kSessionAffinity};

  std::printf("==== cluster routing (%s, %s) ====\n", model.name.c_str(),
              flags.GetString("dataset").c_str());
  for (const int32_t n : {1, 2, 4}) {
    TraceOptions trace_options;
    trace_options.num_conversations = flags.GetInt("conversations") * n;
    trace_options.conversation_rate = flags.GetDouble("rate") * n;
    trace_options.mean_think_time = flags.GetDouble("think");
    trace_options.seed = static_cast<uint64_t>(flags.GetInt("seed"));
    const WorkloadTrace trace(profile, trace_options);

    std::printf("\n-- %d replica(s), %ld conversations at %.2f conv/s --\n", n,
                static_cast<long>(trace_options.num_conversations),
                trace_options.conversation_rate);
    std::printf("%-17s %10s %12s %9s %12s %10s\n", "router", "req/s",
                "p99 ms/tok", "hit rate", "migrated MB", "imbalance");
    for (const RouterPolicy policy : policies) {
      ClusterOptions options;
      options.num_replicas = n;
      options.router.policy = policy;
      const ClusterSummary s = RunClusterExperiment(
          [&](int32_t) {
            return MakeEngine(SystemKind::kPensieve, cost_model);
          },
          trace, options);
      std::printf("%-17s %10.3f %12.1f %9.3f %12.2f %10.2f\n",
                  RouterPolicyName(policy), s.cluster.throughput_rps,
                  s.cluster.p99_normalized_latency * 1e3,
                  s.cluster.engine_stats.CacheHitRate(),
                  s.migration.migrated_bytes / 1e6, s.load_imbalance);
    }
  }
  return 0;
}

}  // namespace
}  // namespace pensieve

int main(int argc, char** argv) { return pensieve::Run(argc, argv); }

// Figure 15: impact of user think time — Pensieve serving Llama 2-13B on
// ShareGPT with mean think times of 60/120/300/600 s, plus vLLM at 600 s as
// the comparison point.
//
// Expected shape (paper §6.7): longer think times push KV-tokens out of the
// cache before the conversation returns, shrinking (but not eliminating)
// Pensieve's advantage over vLLM.

#include "bench_serving_common.h"
#include "bench/bench_serving_common.h"
#include "src/model/model_config.h"
#include "src/sim/hardware.h"

namespace pensieve {
namespace {

void RunFigure15() {
  const GpuCostModel cost_model(Llama2_13BConfig(), A100Spec(1));
  const std::vector<double> rates = {0.5, 1.0, 2.0};
  std::printf("==== Figure 15: user think time, llama2-13b / sharegpt "
              "(cache scaled to 20%% so think time matters at this scale) ====\n");
  for (double think : {60.0, 120.0, 300.0, 600.0}) {
    SweepOptions options;
    options.num_conversations = BenchConversations(200);
    options.mean_think_time = think;
    // The steady-state window spans the arrival process; it must be long
    // enough that follow-up turns (one think time later) land inside it.
    options.target_arrival_span = 600.0 + 2.0 * think;
    options.overrides.cache_scale = 0.2;
    char title[64];
    std::snprintf(title, sizeof(title), "pensieve, think=%.0fs", think);
    PrintSweep(title, RateSweep(SystemKind::kPensieve, cost_model,
                                ShareGptProfile(), rates, options));
  }
  SweepOptions options;
  options.num_conversations = BenchConversations(200);
  options.mean_think_time = 600.0;
  options.target_arrival_span = 600.0 + 2.0 * 600.0;
  options.overrides.cache_scale = 0.2;
  PrintSweep("vllm, think=600s (comparison point)",
             RateSweep(SystemKind::kVllm, cost_model, ShareGptProfile(), rates,
                       options));
}

}  // namespace
}  // namespace pensieve

int main(int argc, char** argv) {
  pensieve::ConsumeThreadsFlag(&argc, argv);
  pensieve::RunFigure15();
  return 0;
}

// Ablations of the swapping design decisions (DESIGN.md §4):
//  1. Ahead-of-time swap-out threshold (paper uses 25% free).
//  2. Pipelined layer-by-layer restore (paper §4.3.3) vs blocking restore.
//  3. Decode reservation (paper §4.3.5 keeps 10% of GPU slots).

#include <cstdio>

#include "bench_serving_common.h"
#include "bench/bench_serving_common.h"
#include "src/model/model_config.h"
#include "src/serving/pensieve_engine.h"
#include "src/sim/hardware.h"

namespace pensieve {
namespace {

ServingSummary RunWith(const GpuCostModel& cost_model, double rate,
                       double swap_threshold, bool pipelined, double reserve,
                       bool smoke) {
  TraceOptions trace_options;
  trace_options.num_conversations = BenchConversations(smoke ? 12 : 200);
  trace_options.conversation_rate = rate;
  trace_options.mean_think_time = 60.0;
  WorkloadTrace trace(ShareGptProfile(), trace_options);

  PensieveEngineOptions options;
  const int64_t gpu_tokens = static_cast<int64_t>(
      0.25 * static_cast<double>(
                 GpuKvCacheTokens(cost_model.model(), cost_model.hardware())));
  const int64_t cpu_tokens = static_cast<int64_t>(
      0.25 * static_cast<double>(
                 CpuKvCacheTokens(cost_model.model(), cost_model.hardware())));
  options.num_gpu_blocks = gpu_tokens / options.block_size;
  options.num_cpu_blocks = cpu_tokens / options.block_size;
  options.swap_out_threshold = swap_threshold;
  options.pipelined_restore = pipelined;
  options.decode_reserve = reserve;
  PensieveEngine engine(cost_model, options);
  return RunServingExperiment(&engine, trace);
}

void RunAblations(bool smoke) {
  const GpuCostModel cost_model(Opt13BConfig(), A100Spec(1));
  const double rate = 2.0;

  std::printf("==== Ablation 1: ahead-of-time swap-out threshold (paper: 0.25) "
              "====\n");
  std::printf("%-12s %-14s %-14s %-22s %-20s\n", "threshold", "tput(req/s)",
              "p90_lat(ms)", "forced_swap_tokens", "aot_swap_tokens");
  const std::vector<double> thresholds =
      smoke ? std::vector<double>{0.0, 0.25}
            : std::vector<double>{0.0, 0.1, 0.25, 0.5};
  for (double threshold : thresholds) {
    ServingSummary s = RunWith(cost_model, rate, threshold, true, 0.10, smoke);
    std::printf("%-12.2f %-14.3f %-14.1f %-22ld %-20ld\n", threshold,
                s.throughput_rps, s.p90_normalized_latency * 1e3,
                static_cast<long>(s.engine_stats.forced_swap_out_tokens),
                static_cast<long>(s.engine_stats.aot_swap_out_tokens));
  }

  std::printf("\n==== Ablation 2: pipelined layer-by-layer restore (paper "
              "§4.3.3) ====\n");
  std::printf("%-12s %-14s %-14s %-22s\n", "pipelined", "tput(req/s)",
              "p90_lat(ms)", "restore_stall(s)");
  double stall_pipelined = 0.0;
  double stall_blocking = 0.0;
  for (bool pipelined : {true, false}) {
    ServingSummary s = RunWith(cost_model, rate, 0.25, pipelined, 0.10, smoke);
    std::printf("%-12s %-14.3f %-14.1f %-22.3f\n", pipelined ? "yes" : "no",
                s.throughput_rps, s.p90_normalized_latency * 1e3,
                s.engine_stats.restore_stall_seconds);
    (pipelined ? stall_pipelined : stall_blocking) =
        s.engine_stats.restore_stall_seconds;
  }
  // --smoke self-check: layer-pipelined restore can only hide stall.
  if (smoke && stall_pipelined > stall_blocking) {
    std::fprintf(stderr,
                 "FAIL: pipelined restore stalled longer than blocking "
                 "(%.3f s > %.3f s)\n", stall_pipelined, stall_blocking);
    std::exit(1);
  }

  std::printf("\n==== Ablation 3: decode reservation (paper §4.3.5: 0.10) ====\n");
  std::printf("%-12s %-14s %-14s %-14s\n", "reserve", "tput(req/s)",
              "p90_lat(ms)", "suspensions");
  const std::vector<double> reserves =
      smoke ? std::vector<double>{0.0, 0.10}
            : std::vector<double>{0.0, 0.05, 0.10, 0.25};
  for (double reserve : reserves) {
    ServingSummary s = RunWith(cost_model, rate, 0.25, true, reserve, smoke);
    std::printf("%-12.2f %-14.3f %-14.1f %-14ld\n", reserve, s.throughput_rps,
                s.p90_normalized_latency * 1e3,
                static_cast<long>(s.engine_stats.suspensions));
  }
  std::printf("\n");
}

}  // namespace
}  // namespace pensieve

int main(int argc, char** argv) {
  pensieve::ConsumeThreadsFlag(&argc, argv);
  const bool smoke = pensieve::ConsumeSmokeFlag(&argc, argv);
  pensieve::RunAblations(smoke);
  return 0;
}

// Prefill/decode disaggregation sweep (DESIGN.md §13).
//
// Runs a prefill-heavy trace (long prompts, short responses — the regime
// where a colocated cluster's decode steps queue behind multi-thousand-token
// prefills) through a colocated baseline and disaggregated splits of the
// same replica count, and reports TTFT / inter-token latency side by side.
// The disaggregated rows should show materially better p99 inter-token
// latency: decode replicas only ever prefill one-token continuations, so no
// decode step waits out a long prefill.
//
// Self-checks (always on; a violation exits nonzero, so the --smoke ctest
// entry is a real test):
//  * every variant completes every request (degradation contract: handoff
//    breakage may cost recompute, never a request);
//  * streams overlap: the pipelined stream finishes no later than the
//    equivalent blocking transfer issued at prefill completion, so
//    aggregate overlap_saved >= 0 — and > 0 whenever streams ran;
//  * with NIC faults armed, the injector's accounting identity holds and
//    still nothing is dropped;
//  * the best disaggregated split beats the colocated baseline on p99
//    inter-token latency.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_serving_common.h"
#include "src/cluster/cluster_driver.h"
#include "src/model/model_config.h"
#include "src/sim/hardware.h"

namespace pensieve {
namespace {

// Long prompts, short answers: retrieval-augmented / document-QA shape,
// the prefill:decode ratio the paper's chat datasets do not stress.
DatasetProfile PrefillHeavyProfile() {
  DatasetProfile profile;
  profile.name = "prefill-heavy";
  profile.mean_turns = 3.0;
  profile.mean_input_len = 1400.0;
  profile.input_len_cv = 0.6;
  profile.mean_output_len = 48.0;
  profile.output_len_cv = 0.5;
  return profile;
}

struct VariantResult {
  std::string name;
  int32_t prefill_replicas = 0;  // 0 = colocated
  ClusterSummary summary;
};

VariantResult RunVariant(const std::string& name, const GpuCostModel& cost_model,
                         const WorkloadTrace& trace, int32_t num_replicas,
                         int32_t prefill_replicas,
                         const LinkFaultProfile& nic_faults) {
  ClusterOptions options;
  options.num_replicas = num_replicas;
  options.router.policy = RouterPolicy::kSessionAffinity;
  options.nic_fault_profile = nic_faults;
  options.fault_seed = 1234;
  if (prefill_replicas > 0) {
    options.disagg.enabled = true;
    options.disagg.prefill_replicas = prefill_replicas;
    options.disagg.min_handoff_tokens = 256;
    options.disagg.stream_layers = cost_model.model().num_layers;
  }
  EngineOverrides overrides;
  overrides.cache_scale = 0.5;
  VariantResult result;
  result.name = name;
  result.prefill_replicas = prefill_replicas;
  result.summary = RunClusterExperiment(
      [&](int32_t replica_id) {
        EngineOverrides replica_overrides = overrides;
        replica_overrides.fault_seed =
            1234 + 0x9E3779B9ull * static_cast<uint64_t>(replica_id + 1);
        return MakeEngine(SystemKind::kPensieve, cost_model, replica_overrides);
      },
      trace, options);
  return result;
}

void PrintVariant(const VariantResult& v) {
  const ServingSummary& s = v.summary.cluster;
  std::printf("%-22s %-10ld %-12.3f %-11.1f %-11.1f %-11.2f %-11.2f %-8ld %-12.1f\n",
              v.name.c_str(), static_cast<long>(s.completed_requests),
              s.throughput_rps, s.mean_ttft * 1e3, s.p99_ttft * 1e3,
              s.mean_itl * 1e3, s.p99_itl * 1e3,
              static_cast<long>(v.summary.handoff.streams),
              v.summary.handoff.overlap_saved_seconds * 1e3);
  if (std::getenv("PENSIEVE_BENCH_VERBOSE") != nullptr) {
    for (size_t i = 0; i < v.summary.replicas.size(); ++i) {
      const ServingSummary& r = v.summary.replicas[i];
      std::printf("    replica %zu: %ld req, %.1f s busy, itl %.2f/%.2f ms, "
                  "ttft %.1f ms\n", i, static_cast<long>(r.completed_requests),
                  r.engine_stats.busy_seconds, r.mean_itl * 1e3,
                  r.p99_itl * 1e3, r.mean_ttft * 1e3);
    }
    std::printf("    stream wait %.1f ms over %ld streams\n",
                v.summary.handoff.stream_wait_seconds * 1e3,
                static_cast<long>(v.summary.handoff.streams));
  }
}

void Fail(const char* what) {
  std::fprintf(stderr, "FAIL: %s\n", what);
  std::exit(1);
}

void CheckVariant(const VariantResult& v, int64_t expected_completed) {
  if (v.summary.cluster.completed_requests != expected_completed) {
    std::fprintf(stderr, "FAIL: %s completed %ld of %ld requests\n",
                 v.name.c_str(),
                 static_cast<long>(v.summary.cluster.completed_requests),
                 static_cast<long>(expected_completed));
    std::exit(1);
  }
  const HandoffStats& h = v.summary.handoff;
  if (h.overlap_saved_seconds < 0.0) {
    Fail("a pipelined stream finished after its blocking equivalent");
  }
  if (v.prefill_replicas > 0 && h.streams > 0 && h.failed_streams == 0 &&
      h.overlap_saved_seconds <= 0.0) {
    Fail("fault-free streams saved no overlap vs blocking transfers");
  }
  const LinkFaultStats& nic = v.summary.nic_link_faults;
  if (nic.injected_timeouts + nic.injected_partials + nic.injected_corruptions !=
      nic.recovered_faults + nic.unrecovered_faults) {
    Fail("NIC fault accounting identity violated");
  }
}

int Main(int argc, char** argv) {
  const bool smoke = ConsumeSmokeFlag(&argc, argv);
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    }
  }

  const GpuCostModel cost_model(Opt13BConfig(), A100Spec(1));
  TraceOptions trace_options;
  trace_options.num_conversations = BenchConversations(smoke ? 16 : 120);
  trace_options.conversation_rate = 2.0;
  trace_options.mean_think_time = 10.0;
  trace_options.seed = 42;
  const WorkloadTrace trace(PrefillHeavyProfile(), trace_options);

  const int32_t replicas = 4;
  std::printf("==== Prefill/decode disaggregation: %d replicas, "
              "prefill-heavy trace (%ld conversations) ====\n",
              replicas, static_cast<long>(trace_options.num_conversations));
  std::printf("%-22s %-10s %-12s %-11s %-11s %-11s %-11s %-8s %-12s\n",
              "variant", "completed", "tput(req/s)", "ttft(ms)", "p99ttft",
              "itl(ms)", "p99itl", "streams", "overlap(ms)");

  std::vector<VariantResult> results;
  results.push_back(RunVariant("colocated", cost_model, trace, replicas, 0,
                               LinkFaultProfile{}));
  results.push_back(RunVariant("disagg 1:3", cost_model, trace, replicas, 1,
                               LinkFaultProfile{}));
  results.push_back(RunVariant("disagg 2:2", cost_model, trace, replicas, 2,
                               LinkFaultProfile{}));
  // Same 1:3 split with the NIC misbehaving mid-stream: chunk stalls,
  // partial deliveries and corruption retries. Slower, never lossy.
  LinkFaultProfile faulty;
  faulty.stall_rate = 0.05;
  faulty.partial_rate = 0.05;
  faulty.corruption_rate = 0.03;
  results.push_back(RunVariant("disagg 1:3 +faults", cost_model, trace,
                               replicas, 1, faulty));

  const int64_t expected = results.front().summary.cluster.completed_requests;
  for (const VariantResult& v : results) {
    PrintVariant(v);
    CheckVariant(v, expected);
  }

  const VariantResult& colocated = results[0];
  double best_p99_itl = results[1].summary.cluster.p99_itl;
  for (size_t i = 1; i + 1 < results.size(); ++i) {
    best_p99_itl = std::min(best_p99_itl, results[i].summary.cluster.p99_itl);
  }
  if (results[1].summary.handoff.streams == 0) {
    Fail("disaggregated run never streamed (threshold or routing broken)");
  }
  if (best_p99_itl >= colocated.summary.cluster.p99_itl) {
    Fail("disaggregation did not improve p99 inter-token latency on a "
         "prefill-heavy trace");
  }
  std::printf("\nbest disagg p99 ITL %.2f ms vs colocated %.2f ms\n",
              best_p99_itl * 1e3, colocated.summary.cluster.p99_itl * 1e3);

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::trunc);
    out << BenchJsonHeader("disagg");
    out << "  \"replicas\": " << replicas << ",\n";
    out << "  \"variants\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
      const VariantResult& v = results[i];
      const ServingSummary& s = v.summary.cluster;
      out << "    {\"name\": \"" << v.name << "\", \"prefill_replicas\": "
          << v.prefill_replicas << ", \"completed\": " << s.completed_requests
          << ", \"throughput_rps\": " << s.throughput_rps
          << ", \"mean_ttft_ms\": " << s.mean_ttft * 1e3
          << ", \"p99_ttft_ms\": " << s.p99_ttft * 1e3
          << ", \"mean_itl_ms\": " << s.mean_itl * 1e3
          << ", \"p99_itl_ms\": " << s.p99_itl * 1e3
          << ", \"streams\": " << v.summary.handoff.streams
          << ", \"failed_streams\": " << v.summary.handoff.failed_streams
          << ", \"overlap_saved_ms\": "
          << v.summary.handoff.overlap_saved_seconds * 1e3 << "}"
          << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    if (!out.good()) {
      Fail("could not write JSON");
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace pensieve

int main(int argc, char** argv) {
  pensieve::ConsumeThreadsFlag(&argc, argv);
  return pensieve::Main(argc, argv);
}

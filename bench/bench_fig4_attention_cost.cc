// Figure 4: execution time of the attention operation for a chunk of 32
// tokens with different context sizes, normalized by the execution time of
// the non-attention operations of a transformer layer (well, of the whole
// model — the normalization constant cancels either way).
//
// Two instruments:
//  1. The A100 cost model (what the serving simulation uses).
//  2. Wall-clock measurement of the real CPU multi-token paged attention
//     kernel against the real dense (non-attention) operators of the tiny
//     model — demonstrating the same linear-in-context shape on real code.

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_serving_common.h"
#include "src/eviction/cost_estimator.h"
#include "src/kernels/attention.h"
#include "src/model/model_config.h"
#include "src/sim/cost_model.h"
#include "src/sim/hardware.h"
#include "src/tensor/ops.h"

namespace pensieve {
namespace {

void ModelBasedTable() {
  const GpuCostModel model(Opt13BConfig(), A100Spec(1));
  constexpr int64_t kChunk = 32;
  const double other = model.MarginalLinearTime(kChunk);
  std::printf("# Figure 4 (cost model, OPT-13B): attention time of a 32-token "
              "chunk / non-attention time\n");
  std::printf("%-10s %-18s %-12s\n", "context", "attention(ms)", "ratio");
  for (int64_t ctx = 32; ctx <= 16384; ctx *= 2) {
    const double attn = model.AttentionTime(kChunk, ctx);
    std::printf("%-10ld %-18.3f %-12.3f\n", ctx, attn * 1e3, attn / other);
  }
}

void MeasuredCpuTable() {
  const ModelConfig config = TinyOptConfig();
  constexpr int64_t kChunk = 32;
  constexpr int64_t kMaxCtx = 4096;
  const int64_t num_blocks = kMaxCtx / kChunk;
  KvPool pool(num_blocks, kChunk, /*num_layers=*/1, config.num_kv_heads,
              config.head_dim);
  std::vector<BlockId> table;
  for (BlockId b = 0; b < num_blocks; ++b) {
    table.push_back(b);
  }
  Tensor kv({config.num_kv_heads, config.head_dim});
  FillNormal(kv, 5, 1.0f);
  for (BlockId b = 0; b < num_blocks; ++b) {
    for (int64_t s = 0; s < kChunk; ++s) {
      pool.WriteToken(b, 0, s, kv.data(), kv.data());
    }
  }
  Tensor query({kChunk, config.num_heads, config.head_dim});
  FillNormal(query, 6, 1.0f);
  Tensor out({kChunk, config.num_heads, config.head_dim});

  // Non-attention reference: the dense projections + FFN of one layer for a
  // 32-token chunk.
  Tensor x({kChunk, config.hidden_size});
  FillNormal(x, 7, 1.0f);
  Tensor wqkv({(config.num_heads + 2 * config.num_kv_heads) * config.head_dim,
               config.hidden_size});
  Tensor w_up({config.ffn_hidden, config.hidden_size});
  Tensor w_down({config.hidden_size, config.ffn_hidden});
  FillNormal(wqkv, 8, 0.1f);
  FillNormal(w_up, 9, 0.1f);
  FillNormal(w_down, 10, 0.1f);
  const auto other_start = std::chrono::steady_clock::now();
  constexpr int kOtherReps = 50;
  for (int rep = 0; rep < kOtherReps; ++rep) {
    Tensor qkv = MatMulTransposedB(x, wqkv);
    Tensor up = MatMulTransposedB(x, w_up);
    ReluInPlace(up);
    Tensor down = MatMulTransposedB(up, w_down);
    (void)qkv;
    (void)down;
  }
  const double other_s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - other_start)
                             .count() /
                         kOtherReps;

  std::printf("\n# Figure 4 (measured, real CPU kernel, tiny-opt layer): "
              "normalized attention cost of a 32-token chunk\n");
  std::printf("%-10s %-18s %-12s\n", "context", "attention(us)", "ratio");
  for (int64_t ctx = kChunk; ctx <= kMaxCtx; ctx *= 2) {
    AttentionSubRequest sub{0, kChunk, ctx, &table};
    constexpr int kReps = 20;
    const auto start = std::chrono::steady_clock::now();
    for (int rep = 0; rep < kReps; ++rep) {
      MultiTokenPagedAttention(pool, 0, query, {sub}, 0.25f, &out);
    }
    const double attn_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count() /
        kReps;
    std::printf("%-10ld %-18.1f %-12.3f\n", ctx, attn_s * 1e6, attn_s / other_s);
  }
  std::printf("\nShape check: the normalized cost grows linearly with context "
              "size (paper Figure 4),\nwhich is why leading chunks are cheaper "
              "to recompute than trailing ones.\n");
}

}  // namespace
}  // namespace pensieve

int main(int argc, char** argv) {
  pensieve::ConsumeThreadsFlag(&argc, argv);
  pensieve::ModelBasedTable();
  pensieve::MeasuredCpuTable();
  return 0;
}

// Figure 14 / §6.6: effect of the eviction policy — Pensieve's
// retention-value policy (V = Cost/T, chunk granularity) versus classic LRU
// (conversation granularity, as in CachedAttention) and the chunk-level LRU
// and cost-only ablations, OPT-13B on ShareGPT.
//
// The cache is scaled down so that eviction pressure appears at this
// experiment scale (the paper reaches pressure at ~3 req/s with its full
// 48K-conversation trace). Reported per point: recomputed-token counts,
// recompute GPU-seconds, and CPU-cache hit rates — the quantities §6.6
// analyzes (paper: up to 4.4pp higher CPU hit rate, up to 14.6% fewer
// recomputed tokens than LRU).
//
// A second section sweeps the eviction chunk size (32 in the paper).

#include "bench_serving_common.h"
#include "bench/bench_serving_common.h"
#include "src/model/model_config.h"
#include "src/serving/pensieve_engine.h"
#include "src/sim/hardware.h"

namespace pensieve {
namespace {

void PolicyComparison() {
  const GpuCostModel cost_model(Opt13BConfig(), A100Spec(1));
  const std::vector<double> rates = {0.5, 1.0, 2.0, 3.0};
  std::printf("==== Figure 14: eviction policies, opt-13b / sharegpt "
              "(cache scaled to 30%% for pressure) ====\n");
  const struct {
    EvictionPolicyKind kind;
    const char* label;
  } kPolicies[] = {
      {EvictionPolicyKind::kRetentionValue, "retention-value (Pensieve)"},
      {EvictionPolicyKind::kConversationLru, "classic LRU (conversation granularity)"},
      {EvictionPolicyKind::kLru, "LRU (chunk granularity)"},
      {EvictionPolicyKind::kCostOnly, "cost-only (no recency)"},
  };
  for (const auto& policy : kPolicies) {
    SweepOptions options;
    options.num_conversations = BenchConversations(200);
    options.mean_think_time = 60.0;
    options.overrides.cache_scale = 0.3;
    options.overrides.policy = policy.kind;
    std::vector<SweepPoint> points =
        RateSweep(SystemKind::kPensieve, cost_model, ShareGptProfile(), rates,
                  options);
    std::printf("## %s\n", policy.label);
    std::printf("%-10s %-14s %-14s %-16s %-12s %-18s\n", "conv_rate",
                "tput(req/s)", "p90_lat(ms)", "recomp_tokens", "cpu_hit",
                "recompute_gpu(s)");
    for (const SweepPoint& p : points) {
      const EngineStats& s = p.summary.engine_stats;
      std::printf("%-10.2f %-14.3f %-14.1f %-16ld %-12.3f %-18.3f\n",
                  p.conversation_rate, p.summary.throughput_rps,
                  p.summary.p90_normalized_latency * 1e3,
                  static_cast<long>(s.recomputed_history_tokens),
                  s.CpuCacheHitRate(), s.recompute_seconds);
    }
    std::printf("\n");
  }
}

void ChunkSizeAblation() {
  const GpuCostModel cost_model(Opt13BConfig(), A100Spec(1));
  std::printf("==== Ablation: eviction chunk size (paper picks 32) ====\n");
  std::printf("%-12s %-14s %-14s %-16s %-12s\n", "chunk_size", "tput(req/s)",
              "p90_lat(ms)", "recomp_tokens", "cpu_hit");
  for (int64_t chunk : {8L, 16L, 32L, 64L, 128L}) {
    TraceOptions trace_options;
    trace_options.num_conversations = BenchConversations(200);
    trace_options.conversation_rate = 2.0;
    trace_options.mean_think_time = 60.0;
    WorkloadTrace trace(ShareGptProfile(), trace_options);
    PensieveEngineOptions options;
    options.block_size = chunk;
    const int64_t gpu_tokens = static_cast<int64_t>(
        0.3 * static_cast<double>(GpuKvCacheTokens(cost_model.model(),
                                                   cost_model.hardware())));
    const int64_t cpu_tokens = static_cast<int64_t>(
        0.3 * static_cast<double>(CpuKvCacheTokens(cost_model.model(),
                                                   cost_model.hardware())));
    options.num_gpu_blocks = gpu_tokens / chunk;
    options.num_cpu_blocks = cpu_tokens / chunk;
    PensieveEngine engine(cost_model, options);
    ServingSummary summary = RunServingExperiment(&engine, trace);
    std::printf("%-12ld %-14.3f %-14.1f %-16ld %-12.3f\n", chunk,
                summary.throughput_rps, summary.p90_normalized_latency * 1e3,
                static_cast<long>(summary.engine_stats.recomputed_history_tokens),
                summary.engine_stats.CpuCacheHitRate());
  }
  std::printf("\n");
}

}  // namespace
}  // namespace pensieve

int main(int argc, char** argv) {
  pensieve::ConsumeThreadsFlag(&argc, argv);
  pensieve::PolicyComparison();
  pensieve::ChunkSizeAblation();
  return 0;
}

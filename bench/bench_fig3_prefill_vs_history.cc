// Figure 3: execution time for a batch of 32 requests performing prompt
// prefill (200 new tokens) with growing conversation history, versus the
// 200-step generation phase.
//
// The paper's motivating measurement: as the history grows, the cost of
// re-processing it (stateless prefill) quickly overtakes the entire
// generation phase, while a stateful prefill that reuses cached history
// stays flat.

#include <cstdio>
#include <vector>

#include "bench_serving_common.h"
#include "src/model/model_config.h"
#include "src/sim/cost_model.h"
#include "src/sim/hardware.h"

namespace pensieve {
namespace {

void RunFigure3() {
  const GpuCostModel model(Opt13BConfig(), A100Spec(1));
  constexpr int64_t kBatch = 32;
  constexpr int64_t kPrompt = 200;
  constexpr int64_t kGenSteps = 200;

  // Generation phase: 200 decode steps over the full batch. The context
  // grows by one per step; use the average context for each history size.
  auto generation_time = [&](int64_t history) {
    double total = 0.0;
    for (int64_t step = 0; step < kGenSteps; ++step) {
      std::vector<GpuCostModel::BatchItem> items(
          kBatch, {1, history + kPrompt + step + 1});
      total += model.StepTime(items);
    }
    return total;
  };

  std::printf("# Figure 3: prefill vs generation cost, OPT-13B, batch=32, "
              "prompt=200, 200 generation steps\n");
  std::printf("%-10s %-26s %-26s %-22s\n", "history", "prefill_recompute(s)",
              "prefill_cached_history(s)", "generation_200_steps(s)");
  for (int64_t history : {0L, 512L, 1024L, 2048L, 4096L, 8192L, 12288L, 16384L}) {
    // Stateless: the history is re-processed together with the prompt.
    std::vector<GpuCostModel::BatchItem> stateless(
        kBatch, {history + kPrompt, history + kPrompt});
    // Stateful: only the 200 new prompt tokens are processed; they attend
    // to the cached history.
    std::vector<GpuCostModel::BatchItem> stateful(kBatch,
                                                  {kPrompt, history + kPrompt});
    std::printf("%-10ld %-26.3f %-26.3f %-22.3f\n", history,
                model.StepTime(stateless), model.StepTime(stateful),
                generation_time(history));
  }
  std::printf("\nShape check: stateless prefill grows ~linearly with history and "
              "overtakes the generation phase;\nstateful prefill (cached history) "
              "stays nearly flat.\n");
}

}  // namespace
}  // namespace pensieve

int main(int argc, char** argv) {
  pensieve::ConsumeThreadsFlag(&argc, argv);
  pensieve::RunFigure3();
  return 0;
}

// Figure 11: end-to-end serving performance on 4 GPUs (tensor parallelism)
// for OPT-66B and Llama 2-70B on ShareGPT.
//
// Expected shape (paper §6.3): larger models amplify Pensieve's advantage —
// compute grows faster than KV size (OPT-13B -> OPT-66B: >5x compute,
// 2.88x KV bytes/token), so avoiding recomputation buys relatively more;
// Llama 2-70B (GQA group 8) benefits most, including the GPU-cache-only
// variant.

#include "bench_serving_common.h"
#include "bench/bench_serving_common.h"
#include "src/model/model_config.h"
#include "src/sim/hardware.h"

namespace pensieve {
namespace {

void RunFigure11() {
  const std::vector<double> rates = {0.2, 0.4, 0.8, 1.6, 2.4, 3.2};
  const std::vector<SystemKind> systems = {
      SystemKind::kPensieve, SystemKind::kPensieveGpuOnly, SystemKind::kVllm,
      SystemKind::kTensorRtLlm};
  SweepOptions options;
  options.num_conversations = BenchConversations();
  options.mean_think_time = 60.0;

  const HardwareSpec hw = A100Spec(4);
  for (const ModelConfig& model : {Opt66BConfig(), Llama2_70BConfig()}) {
    const GpuCostModel cost_model(model, hw);
    RunSystemsSweep("Figure 11: " + model.name + " / sharegpt (4 GPUs, think=60s)",
                    cost_model, ShareGptProfile(), systems, rates, options);
  }
}

}  // namespace
}  // namespace pensieve

int main(int argc, char** argv) {
  pensieve::ConsumeThreadsFlag(&argc, argv);
  pensieve::RunFigure11();
  return 0;
}

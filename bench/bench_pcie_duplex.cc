// §5 ablation: "prioritize data retrieval over eviction".
//
// The paper measured an 18-20% per-direction throughput drop when PCIe
// transfers run full duplex, and therefore makes eviction traffic wait for
// in-flight swap-ins. This bench shows (1) the link-level effect and (2) the
// end-to-end effect of the waiting mechanism on a swap-heavy workload.

#include <cstdio>

#include "bench_serving_common.h"
#include "bench/bench_serving_common.h"
#include "src/model/model_config.h"
#include "src/sim/hardware.h"
#include "src/sim/pcie_link.h"

namespace pensieve {
namespace {

// --smoke self-check: prioritizing swap-ins must never slow the swap-in
// (and must push the eviction behind it).
void CheckPriorityInvariant(double restore_duplex, double restore_prio,
                            double evict_duplex, double evict_prio) {
  if (restore_prio > restore_duplex || evict_prio < evict_duplex) {
    std::fprintf(stderr,
                 "FAIL: swap-in priority made restore slower (%.3f -> %.3f ms) "
                 "or eviction faster (%.3f -> %.3f ms)\n", restore_duplex * 1e3,
                 restore_prio * 1e3, evict_duplex * 1e3, evict_prio * 1e3);
    std::exit(1);
  }
}

void LinkLevel(bool smoke) {
  std::printf("==== PCIe link model: swap-in completion time for 1 GB with a "
              "concurrent 1 GB eviction ====\n");
  std::printf("%-34s %-22s %-22s\n", "mode", "swap_in_done(ms)", "eviction_done(ms)");
  double restore_duplex = 0.0;
  double evict_duplex = 0.0;
  {
    PcieLink link(25e9, 0.8, /*prioritize_h2d=*/false);
    evict_duplex = link.ScheduleDeviceToHost(0.0, 1e9);
    restore_duplex = link.ScheduleHostToDevice(0.0, 1e9);
    std::printf("%-34s %-22.1f %-22.1f\n", "full duplex (no priority)",
                restore_duplex * 1e3, evict_duplex * 1e3);
  }
  {
    PcieLink link(25e9, 0.8, /*prioritize_h2d=*/true);
    const double restore = link.ScheduleHostToDevice(0.0, 1e9);
    const double evict = link.ScheduleDeviceToHost(0.0, 1e9);
    std::printf("%-34s %-22.1f %-22.1f\n", "swap-in prioritized (Pensieve)",
                restore * 1e3, evict * 1e3);
    if (smoke) {
      CheckPriorityInvariant(restore_duplex, restore, evict_duplex, evict);
    }
  }
  std::printf("\n");
}

void EndToEnd(bool smoke) {
  const GpuCostModel cost_model(Opt13BConfig(), A100Spec(1));
  const std::vector<double> rates =
      smoke ? std::vector<double>{2.0} : std::vector<double>{1.0, 2.0, 3.0};
  std::printf("==== End-to-end: swap-in priority on/off, opt-13b / sharegpt, "
              "cache scaled to 25%% (swap-heavy) ====\n");
  for (bool prioritize : {true, false}) {
    SweepOptions options;
    options.num_conversations = BenchConversations(smoke ? 12 : 200);
    options.mean_think_time = 60.0;
    options.overrides.cache_scale = 0.25;
    options.overrides.prioritize_swap_in = prioritize;
    PrintSweep(prioritize ? "pensieve (swap-in prioritized)"
                          : "pensieve (full-duplex PCIe)",
               RateSweep(SystemKind::kPensieve, cost_model, ShareGptProfile(),
                         rates, options));
  }
}

}  // namespace
}  // namespace pensieve

int main(int argc, char** argv) {
  pensieve::ConsumeThreadsFlag(&argc, argv);
  const bool smoke = pensieve::ConsumeSmokeFlag(&argc, argv);
  pensieve::LinkLevel(smoke);
  pensieve::EndToEnd(smoke);
  return 0;
}

// Replica fault-injection recovery cost, per routing policy.
//
// Replays the same trace through each routing policy twice — once untouched
// and once with replica 0 killed partway through the arrival process and
// (optionally) recovered later — and tabulates what the failure cost:
// requests re-routed off the dead replica, KV tokens lost (recomputed at the
// conversations' new homes), extra history recompute versus the clean run,
// and the p99 normalized-latency inflation. Session affinity concentrates
// whole conversations on their home replica, so it loses the most KV per
// crash; round-robin spreads each conversation's turns and pays recompute
// everywhere instead. This bench puts numbers on that trade.
//
// Accepts the pensieve_sim workload flags (--model, --dataset, --rate,
// --conversations, --think, --seed) plus --replicas, --fail_frac and
// --recover_frac (fractions of the conversation-arrival span; recover_frac
// >= 1 disables recovery so the cluster finishes the run a replica short).

#include <cstdio>
#include <vector>

#include "bench_serving_common.h"
#include "src/cluster/cluster_driver.h"
#include "src/common/flags.h"
#include "src/serving/experiment_core.h"
#include "src/workload/trace.h"

namespace pensieve {
namespace {

int Run(int argc, char** argv) {
  FlagParser flags;
  flags.AddString("model", "opt-13b",
                  "model preset: opt-13b, opt-66b, llama2-13b, llama2-70b");
  flags.AddString("dataset", "sharegpt",
                  "workload profile: sharegpt or ultrachat");
  flags.AddDouble("rate", 1.2, "conversation arrival rate (conversations/s)");
  flags.AddInt("conversations", BenchConversations(300),
               "number of conversations in the trace");
  flags.AddDouble("think", 20.0, "mean user think time (s)");
  flags.AddInt("seed", 42, "workload seed");
  flags.AddInt("replicas", 2, "cluster size");
  flags.AddDouble("fail_frac", 0.3,
                  "kill replica 0 at this fraction of the arrival span");
  flags.AddDouble("recover_frac", 0.7,
                  "recover replica 0 at this fraction of the arrival span "
                  "(>= 1 disables recovery)");
  flags.AddInt("threads", 0,
               "worker threads for kernels/GEMMs; 0 = PENSIEVE_THREADS env "
               "var, else hardware concurrency");
  flags.AddBool("help", false, "print usage");
  Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n\nflags:\n%s", status.ToString().c_str(),
                 flags.Help().c_str());
    return 2;
  }
  if (flags.GetBool("help")) {
    std::printf("bench_fault_recovery: replica crash recovery cost\n\nflags:\n%s",
                flags.Help().c_str());
    return 0;
  }
  ThreadPool::SetGlobalThreads(static_cast<int>(flags.GetInt("threads")));

  ModelConfig model;
  if (!ModelConfigByName(flags.GetString("model"), &model)) {
    std::fprintf(stderr, "unknown model '%s'\n",
                 flags.GetString("model").c_str());
    return 2;
  }
  const DatasetProfile profile = flags.GetString("dataset") == "ultrachat"
                                     ? UltraChatProfile()
                                     : ShareGptProfile();
  const GpuCostModel cost_model(model, A100Spec(model.num_gpus));
  const int32_t num_replicas = static_cast<int32_t>(flags.GetInt("replicas"));
  if (num_replicas < 2) {
    std::fprintf(stderr, "--replicas must be >= 2 (someone must survive)\n");
    return 2;
  }

  TraceOptions trace_options;
  trace_options.num_conversations = flags.GetInt("conversations");
  trace_options.conversation_rate = flags.GetDouble("rate");
  trace_options.mean_think_time = flags.GetDouble("think");
  trace_options.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  const WorkloadTrace trace(profile, trace_options);

  const double span = ArrivalSpan(trace);
  const double fail_time = flags.GetDouble("fail_frac") * span;
  const double recover_frac = flags.GetDouble("recover_frac");
  const bool with_recovery = recover_frac < 1.0;
  const double recover_time = recover_frac * span;

  std::printf("==== fault recovery (%s, %s, %d replicas) ====\n",
              model.name.c_str(), flags.GetString("dataset").c_str(),
              num_replicas);
  std::printf("replica 0 dies at t=%.1f s", fail_time);
  if (with_recovery) {
    std::printf(", recovers at t=%.1f s", recover_time);
  }
  std::printf(" (arrival span %.1f s)\n\n", span);
  std::printf("%-17s %10s %12s %12s %10s %12s %11s\n", "router", "req/s",
              "p99 ms/tok", "p99 infl.", "rerouted", "recompute+", "kv lost");

  const RouterPolicy policies[] = {RouterPolicy::kRoundRobin,
                                   RouterPolicy::kLeastLoaded,
                                   RouterPolicy::kSessionAffinity};
  for (const RouterPolicy policy : policies) {
    ClusterOptions base;
    base.num_replicas = num_replicas;
    base.router.policy = policy;
    auto make = [&](int32_t) {
      return MakeEngine(SystemKind::kPensieve, cost_model);
    };
    const ClusterSummary clean = RunClusterExperiment(make, trace, base);

    ClusterOptions faulted = base;
    faulted.faults.push_back(ReplicaFault{fail_time, 0, /*recover=*/false});
    if (with_recovery) {
      faulted.faults.push_back(ReplicaFault{recover_time, 0, /*recover=*/true});
    }
    const ClusterSummary crashed = RunClusterExperiment(make, trace, faulted);

    const double p99_clean = clean.cluster.p99_normalized_latency * 1e3;
    const double p99_crashed = crashed.cluster.p99_normalized_latency * 1e3;
    const int64_t recompute_delta =
        crashed.cluster.engine_stats.recomputed_history_tokens -
        clean.cluster.engine_stats.recomputed_history_tokens;
    std::printf("%-17s %10.3f %12.1f %11.2fx %10ld %12ld %11ld\n",
                RouterPolicyName(policy), crashed.cluster.throughput_rps,
                p99_crashed, p99_clean > 0.0 ? p99_crashed / p99_clean : 0.0,
                static_cast<long>(crashed.faults.rerouted_requests),
                static_cast<long>(recompute_delta),
                static_cast<long>(crashed.faults.lost_kv_tokens));
  }
  return 0;
}

}  // namespace
}  // namespace pensieve

int main(int argc, char** argv) { return pensieve::Run(argc, argv); }

// Shared-prefix dedup benchmark: refcounted copy-on-write KV blocks.
//
// Replays the same conversation trace four ways — no templates with sharing
// on and off, then N shared prompt templates with sharing off and on — and
// reports what block-granular dedup buys: first-turn prefill work and TTFT
// of template-matching conversations, dedup/CoW traffic, and peak GPU KV
// footprint (resident conversations per GB).
//
// Self-checks (always on; --smoke only shrinks the workload):
//   * dedup-off pin: on a trace with no templates, the sharing-enabled
//     engine is bit-identical to the sharing-disabled engine (same
//     completions, schedule, steps — sharing must be pay-for-use);
//   * refcount balance identity on every run:
//     acquires == releases + live blocks;
//   * sharing trades no requests: template runs complete the same request
//     count with sharing on and off;
//   * with templates, the sharing run actually dedups (hits > 0) and
//     first-turn prefill of template conversations drops by more than half
//     the prefix length — the shared run became a cache hit;
//   * peak GPU block usage never grows with sharing on;
//   * repeated runs are deterministic.
// Any violation fails the binary, making the ctest --smoke entry a real
// test.
//
// Emits machine-readable JSON (default BENCH_prefix.json): one entry per
// (templates x sharing) configuration.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_serving_common.h"
#include "src/common/flags.h"
#include "src/common/stats.h"
#include "src/kvcache/block.h"
#include "src/serving/driver.h"

namespace pensieve {
namespace {

struct RunResult {
  ServingSummary summary;
  double mean_ttft = 0.0;
  double p99_ttft = 0.0;
  // First-turn requests of template-carrying conversations: the population
  // whose prefill the dedup is supposed to absorb.
  int64_t template_first_turns = 0;
  double template_mean_prefill = 0.0;
  double template_mean_ttft = 0.0;
};

RunResult RunOnce(const GpuCostModel& cost_model, const DatasetProfile& profile,
                  const TraceOptions& trace_options,
                  const EngineOverrides& overrides) {
  const WorkloadTrace trace(profile, trace_options);
  auto engine = MakeEngine(SystemKind::kPensieve, cost_model, overrides);
  std::vector<RequestOutcome> outcomes;
  DriverOptions driver;
  driver.outcomes = &outcomes;
  RunResult result;
  result.summary = RunServingExperiment(engine.get(), trace, driver);
  SampleStats ttft;
  SampleStats template_prefill;
  SampleStats template_ttft;
  for (const RequestOutcome& o : outcomes) {
    const double t = o.first_scheduled_time - o.request.arrival_time;
    ttft.Add(t);
    if (o.request.template_id >= 0 && o.request.turn_index == 0) {
      template_prefill.Add(static_cast<double>(o.prefill_input_tokens));
      template_ttft.Add(t);
    }
  }
  if (!ttft.empty()) {
    result.mean_ttft = ttft.Mean();
    result.p99_ttft = ttft.Percentile(0.99);
  }
  if (!template_prefill.empty()) {
    result.template_first_turns = static_cast<int64_t>(template_prefill.count());
    result.template_mean_prefill = template_prefill.Mean();
    result.template_mean_ttft = template_ttft.Mean();
  }
  return result;
}

// Stats fields that must be reproducible run-to-run; also the fields the
// dedup-off pin compares, so it includes the sharing counters (all zero on
// a template-free trace).
std::string StatsFingerprint(const ServingSummary& s) {
  const EngineStats& e = s.engine_stats;
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "completed=%lld steps=%lld generated=%lld prefill=%lld "
      "reused_gpu=%lld reused_cpu=%lld reused_ssd=%lld reused_shared=%lld "
      "recomputed=%lld dedup_hits=%lld cow=%lld acquires=%lld releases=%lld "
      "peak=%lld busy=%.9e makespan=%.9e",
      static_cast<long long>(s.completed_requests),
      static_cast<long long>(e.steps),
      static_cast<long long>(e.generated_tokens),
      static_cast<long long>(e.prefill_tokens),
      static_cast<long long>(e.reused_gpu_tokens),
      static_cast<long long>(e.reused_cpu_tokens),
      static_cast<long long>(e.reused_ssd_tokens),
      static_cast<long long>(e.reused_shared_tokens),
      static_cast<long long>(e.recomputed_history_tokens),
      static_cast<long long>(e.dedup_hit_requests),
      static_cast<long long>(e.cow_copies),
      static_cast<long long>(e.kv_block_acquires),
      static_cast<long long>(e.kv_block_releases),
      static_cast<long long>(e.gpu_peak_allocated_blocks), e.busy_seconds,
      s.makespan);
  return buf;
}

int Run(int argc, char** argv) {
  FlagParser flags;
  flags.AddString("model", "opt-66b",
                  "model preset: opt-13b, opt-66b, llama2-13b, llama2-70b");
  flags.AddString("dataset", "sharegpt",
                  "workload profile: sharegpt or ultrachat");
  flags.AddInt("conversations", 0,
               "conversation count (0 = bench default, 150)");
  flags.AddDouble("rate", 1.5, "conversation arrival rate (conversations/s)");
  flags.AddDouble("think", 60.0, "mean user think time (s)");
  flags.AddInt("seed", 42, "workload seed");
  flags.AddDouble("cache_scale", 4.0,
                  "GPU+CPU cache scale (1.0 = paper setup). The default is "
                  "large enough that the trace's retained KV fits the GPU, "
                  "so peak block usage measures working-set size — the "
                  "capacity axis dedup improves — instead of clipping at "
                  "tier capacity");
  flags.AddInt("templates", 8, "number of shared prompt templates");
  flags.AddInt("prefix-len", 512,
               "template prefix length prepended to each first turn (tokens)");
  flags.AddString("json", "BENCH_prefix.json", "output JSON path");
  flags.AddBool("smoke", false, "CI-sized run: small trace, short prefixes");
  flags.AddBool("help", false, "print usage");
  ConsumeThreadsFlag(&argc, argv);
  Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n\nflags:\n%s", status.ToString().c_str(),
                 flags.Help().c_str());
    return 2;
  }
  if (flags.GetBool("help")) {
    std::printf("bench_prefix_sharing: shared-prefix dedup benchmark\n\n"
                "flags:\n%s",
                flags.Help().c_str());
    return 0;
  }
  const bool smoke = flags.GetBool("smoke");

  ModelConfig model;
  if (!ModelConfigByName(flags.GetString("model"), &model)) {
    std::fprintf(stderr, "unknown model '%s'\n",
                 flags.GetString("model").c_str());
    return 2;
  }
  const DatasetProfile profile = flags.GetString("dataset") == "ultrachat"
                                     ? UltraChatProfile()
                                     : ShareGptProfile();
  const GpuCostModel cost_model(model, A100Spec(model.num_gpus));

  EngineOverrides base;
  base.cache_scale = flags.GetDouble("cache_scale");

  TraceOptions trace_options;
  trace_options.conversation_rate = flags.GetDouble("rate");
  trace_options.mean_think_time = flags.GetDouble("think");
  trace_options.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  int64_t conversations = flags.GetInt("conversations");
  if (conversations <= 0) {
    conversations = smoke ? 20 : BenchConversations(150);
  }
  trace_options.num_conversations = conversations;
  const int64_t templates =
      smoke ? std::min<int64_t>(flags.GetInt("templates"), 4)
            : flags.GetInt("templates");
  const int64_t prefix_len =
      smoke ? std::min<int64_t>(flags.GetInt("prefix-len"), 128)
            : flags.GetInt("prefix-len");
  // GiB of KV held by the peak number of allocated GPU blocks.
  const double gb_per_block =
      static_cast<double>(kDefaultBlockSize) *
      static_cast<double>(model.KvBytesPerToken()) / (1024.0 * 1024.0 * 1024.0);

  int failures = 0;
  std::vector<std::string> json_entries;
  std::printf("==== prefix sharing (%s, %s, %ld conversations, %ld templates "
              "x %ld tokens) ====\n",
              model.name.c_str(), flags.GetString("dataset").c_str(),
              static_cast<long>(conversations), static_cast<long>(templates),
              static_cast<long>(prefix_len));
  std::printf("%-5s %-6s %9s %12s %12s %14s %11s %10s %10s %11s\n", "tmpl",
              "share", "completed", "mean_ttft_ms", "tmpl_ttft_ms",
              "tmpl_prefill", "dedup_hits", "cow", "peak_blks", "conv_per_gb");

  RunResult pin;          // templates=0, sharing off: the pre-dedup baseline
  RunResult template_off; // templates=N, sharing off
  for (const int64_t tmpl : {static_cast<int64_t>(0), templates}) {
    trace_options.num_prefix_templates = tmpl;
    trace_options.prefix_len = tmpl > 0 ? prefix_len : 0;
    for (int share = 0; share <= 1; ++share) {
      EngineOverrides overrides = base;
      overrides.enable_prefix_sharing = share == 1;
      const RunResult r = RunOnce(cost_model, profile, trace_options, overrides);
      const EngineStats& e = r.summary.engine_stats;
      const double peak_gb =
          static_cast<double>(e.gpu_peak_allocated_blocks) * gb_per_block;
      const double conv_per_gb =
          peak_gb > 0.0 ? static_cast<double>(conversations) / peak_gb : 0.0;
      std::printf("%-5ld %-6s %9ld %12.1f %12.1f %14.1f %11ld %10ld %10ld %11.2f\n",
                  static_cast<long>(tmpl), share ? "on" : "off",
                  static_cast<long>(r.summary.completed_requests),
                  r.mean_ttft * 1e3, r.template_mean_ttft * 1e3,
                  r.template_mean_prefill,
                  static_cast<long>(e.dedup_hit_requests),
                  static_cast<long>(e.cow_copies),
                  static_cast<long>(e.gpu_peak_allocated_blocks), conv_per_gb);
      char entry[640];
      std::snprintf(
          entry, sizeof(entry),
          "{\"templates\": %ld, \"prefix_len\": %ld, \"sharing\": %d, "
          "\"completed\": %ld, \"mean_ttft_s\": %.6e, \"p99_ttft_s\": %.6e, "
          "\"template_first_turns\": %ld, \"template_mean_ttft_s\": %.6e, "
          "\"template_mean_prefill_tokens\": %.2f, \"dedup_hit_requests\": "
          "%ld, \"reused_shared_tokens\": %ld, \"cow_copies\": %ld, "
          "\"peak_gpu_blocks\": %ld, \"peak_kv_gb\": %.4f, "
          "\"conversations_per_gb\": %.4f, \"kv_block_acquires\": %ld, "
          "\"kv_block_releases\": %ld, \"kv_blocks_live\": %ld}",
          static_cast<long>(tmpl), static_cast<long>(tmpl > 0 ? prefix_len : 0),
          share, static_cast<long>(r.summary.completed_requests), r.mean_ttft,
          r.p99_ttft, static_cast<long>(r.template_first_turns),
          r.template_mean_ttft, r.template_mean_prefill,
          static_cast<long>(e.dedup_hit_requests),
          static_cast<long>(e.reused_shared_tokens),
          static_cast<long>(e.cow_copies),
          static_cast<long>(e.gpu_peak_allocated_blocks), peak_gb, conv_per_gb,
          static_cast<long>(e.kv_block_acquires),
          static_cast<long>(e.kv_block_releases),
          static_cast<long>(e.kv_blocks_live));
      json_entries.push_back(entry);

      // Self-check: the refcount ledger balances on every configuration.
      if (e.kv_block_acquires != e.kv_block_releases + e.kv_blocks_live) {
        std::fprintf(stderr,
                     "FAIL tmpl=%ld share=%d: refcount identity violated "
                     "(%lld acquires != %lld releases + %lld live)\n",
                     static_cast<long>(tmpl), share,
                     static_cast<long long>(e.kv_block_acquires),
                     static_cast<long long>(e.kv_block_releases),
                     static_cast<long long>(e.kv_blocks_live));
        ++failures;
      }
      if (tmpl == 0 && share == 0) {
        pin = r;
      } else if (tmpl == 0 && share == 1) {
        // Self-check: sharing is pay-for-use. Without templates the enabled
        // engine must match the disabled engine exactly.
        if (StatsFingerprint(r.summary) != StatsFingerprint(pin.summary)) {
          std::fprintf(stderr,
                       "FAIL: sharing-on diverged on a template-free trace\n"
                       "  off: %s\n  on:  %s\n",
                       StatsFingerprint(pin.summary).c_str(),
                       StatsFingerprint(r.summary).c_str());
          ++failures;
        }
      } else if (tmpl > 0 && share == 0) {
        template_off = r;
      } else {
        // Self-check: dedup trades no requests ...
        if (r.summary.completed_requests !=
            template_off.summary.completed_requests) {
          std::fprintf(stderr,
                       "FAIL: sharing-on completed %ld != sharing-off %ld\n",
                       static_cast<long>(r.summary.completed_requests),
                       static_cast<long>(template_off.summary.completed_requests));
          ++failures;
        }
        // ... actually dedups ...
        if (e.dedup_hit_requests == 0 || e.reused_shared_tokens == 0) {
          std::fprintf(stderr, "FAIL: template run produced no dedup hits\n");
          ++failures;
        }
        // ... turns the shared run into a cache hit (template conversations
        // skip more than half the prefix on average; publishers and
        // early-arriving conversations keep the mean above zero) ...
        if (r.template_mean_prefill >
            template_off.template_mean_prefill -
                0.5 * static_cast<double>(prefix_len)) {
          std::fprintf(stderr,
                       "FAIL: template first-turn prefill %.1f with sharing "
                       "vs %.1f without — dedup did not absorb the prefix\n",
                       r.template_mean_prefill,
                       template_off.template_mean_prefill);
          ++failures;
        }
        // ... and never costs peak capacity (more resident conversations
        // per GB of KV).
        if (e.gpu_peak_allocated_blocks >
            template_off.summary.engine_stats.gpu_peak_allocated_blocks) {
          std::fprintf(
              stderr,
              "FAIL: sharing-on peak %lld blocks > sharing-off peak %lld\n",
              static_cast<long long>(e.gpu_peak_allocated_blocks),
              static_cast<long long>(
                  template_off.summary.engine_stats.gpu_peak_allocated_blocks));
          ++failures;
        }
        // Self-check: deterministic replay.
        const RunResult again =
            RunOnce(cost_model, profile, trace_options, overrides);
        if (StatsFingerprint(again.summary) != StatsFingerprint(r.summary)) {
          std::fprintf(stderr,
                       "FAIL: repeated template run diverged\n  1st: %s\n"
                       "  2nd: %s\n",
                       StatsFingerprint(r.summary).c_str(),
                       StatsFingerprint(again.summary).c_str());
          ++failures;
        }
      }
    }
  }

  const std::string json_path = flags.GetString("json");
  std::ofstream out(json_path, std::ios::trunc);
  if (!out.is_open()) {
    std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    return 1;
  }
  out << BenchJsonHeader("prefix_sharing") << "  \"model\": \"" << model.name
      << "\",\n  \"smoke\": " << (smoke ? "true" : "false")
      << ",\n  \"entries\": [\n";
  for (size_t i = 0; i < json_entries.size(); ++i) {
    out << "    " << json_entries[i]
        << (i + 1 < json_entries.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  out.close();
  std::printf("\nwrote %s\n", json_path.c_str());

  if (failures > 0) {
    return 1;
  }
  std::printf("self-checks held: dedup-off bit-identical, refcount ledger "
              "balanced, no dropped requests, prefix absorbed, peak capacity "
              "not exceeded, deterministic replay\n");
  return 0;
}

}  // namespace
}  // namespace pensieve

int main(int argc, char** argv) { return pensieve::Run(argc, argv); }

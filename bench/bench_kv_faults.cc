// KV-transfer fault-injection sweep: serving cost of an unreliable PCIe link.
//
// Replays the same trace through the Pensieve engine at increasing link
// fault rates (a mix of timeouts, stalls, partial transfers and silent
// corruption split across the PCIe AND flash (SSD) fault profiles) and
// tabulates what the faults cost: retries and backoff charged to the
// simulated clock, p99 normalized-latency inflation, and how much history
// had to be recomputed when retries exhausted and the engine degraded
// corrupted or undeliverable KV to the recompute path. The caches are
// deliberately scaled down so swap AND demote traffic — and therefore fault
// exposure on both links — is heavy.
//
// Every row is checked against two invariants from the failure model, each
// applied independently to the PCIe link and the SSD link:
//   * accounting: injected timeouts + partials + corruptions ==
//     recovered + unrecovered faults (stalls deliver late, never retry);
//   * no dropped requests: every fault rate completes exactly the requests
//     the fault-free row completes.
// A violated invariant fails the binary, which makes --smoke a real test.
//
// Accepts the pensieve_sim workload flags (--model, --dataset, --rate,
// --conversations, --think, --seed) plus --cache_scale, --cpu-scale,
// --ssd-capacity, --max_attempts and --smoke (CI-sized run: 12
// conversations, rates {0, 0.05}).

#include <cstdio>
#include <vector>

#include "bench_serving_common.h"
#include "src/common/flags.h"
#include "src/serving/driver.h"

namespace pensieve {
namespace {

// Splits one scalar fault rate across the four fault kinds so every
// mechanism (retry, late delivery, checksum rejection) stays exercised.
LinkFaultProfile MixedProfile(double rate) {
  LinkFaultProfile profile;
  profile.timeout_rate = 0.35 * rate;
  profile.stall_rate = 0.15 * rate;
  profile.partial_rate = 0.15 * rate;
  profile.corruption_rate = 0.35 * rate;
  return profile;
}

int Run(int argc, char** argv) {
  FlagParser flags;
  flags.AddString("model", "opt-13b",
                  "model preset: opt-13b, opt-66b, llama2-13b, llama2-70b");
  flags.AddString("dataset", "sharegpt",
                  "workload profile: sharegpt or ultrachat");
  flags.AddDouble("rate", 1.2, "conversation arrival rate (conversations/s)");
  flags.AddInt("conversations", BenchConversations(120),
               "number of conversations in the trace");
  flags.AddDouble("think", 20.0, "mean user think time (s)");
  flags.AddInt("seed", 42, "workload seed");
  flags.AddDouble("cache_scale", 0.15,
                  "KV-cache scale; small values force swap traffic");
  flags.AddDouble("cpu-scale", 0.3,
                  "extra CPU-tier multiplier; small values force demotes "
                  "into the flash tier so SSD faults are exercised");
  flags.AddDouble("ssd-capacity", 16.0,
                  "flash tier capacity in GiB; 0 turns the tier (and SSD "
                  "fault arming) off");
  flags.AddInt("max_attempts", 4, "transfer attempts before degrading");
  flags.AddInt("fault_seed", 7, "fault-injection RNG seed");
  flags.AddBool("smoke", false,
                "CI-sized run: 12 conversations, rates {0, 0.05}");
  flags.AddBool("help", false, "print usage");
  ConsumeThreadsFlag(&argc, argv);
  Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n\nflags:\n%s", status.ToString().c_str(),
                 flags.Help().c_str());
    return 2;
  }
  if (flags.GetBool("help")) {
    std::printf("bench_kv_faults: KV-transfer fault-injection sweep\n\nflags:\n%s",
                flags.Help().c_str());
    return 0;
  }
  const bool smoke = flags.GetBool("smoke");

  ModelConfig model;
  if (!ModelConfigByName(flags.GetString("model"), &model)) {
    std::fprintf(stderr, "unknown model '%s'\n",
                 flags.GetString("model").c_str());
    return 2;
  }
  const DatasetProfile profile = flags.GetString("dataset") == "ultrachat"
                                     ? UltraChatProfile()
                                     : ShareGptProfile();
  const GpuCostModel cost_model(model, A100Spec(model.num_gpus));

  TraceOptions trace_options;
  trace_options.num_conversations =
      smoke ? 12 : flags.GetInt("conversations");
  trace_options.conversation_rate = flags.GetDouble("rate");
  trace_options.mean_think_time = flags.GetDouble("think");
  trace_options.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  const WorkloadTrace trace(profile, trace_options);

  std::vector<double> rates;
  if (smoke) {
    rates = {0.0, 0.05};
  } else {
    rates = {0.0, 1e-3, 1e-2, 5e-2, 1e-1};
  }

  std::printf(
      "==== KV-transfer faults (%s, %s, cache x%.2f, ssd %.0f GiB, %ld "
      "attempts) ====\n",
      model.name.c_str(), flags.GetString("dataset").c_str(),
      flags.GetDouble("cache_scale"), flags.GetDouble("ssd-capacity"),
      static_cast<long>(flags.GetInt("max_attempts")));
  std::printf("%-10s %9s %10s %12s %9s %8s %8s %7s %9s %8s %7s %9s %11s %9s\n",
              "fault_rate", "completed", "req/s", "p99 ms/tok", "injected",
              "retries", "recov", "unrec", "ssd_inj", "ssd_rec", "ssd_unr",
              "degraded", "recompute+", "backoff_s");

  int64_t baseline_completed = -1;
  int failures = 0;
  for (double rate : rates) {
    EngineOverrides overrides;
    overrides.cache_scale = flags.GetDouble("cache_scale");
    overrides.cpu_cache_scale = flags.GetDouble("cpu-scale");
    overrides.ssd_capacity_gb = flags.GetDouble("ssd-capacity");
    overrides.pcie_fault_profile = MixedProfile(rate);
    if (overrides.ssd_capacity_gb > 0.0) {
      // Arm the flash link with the same mixed profile; its injector draws
      // from a decorrelated stream, so this never shifts the PCIe faults.
      overrides.ssd_fault_profile = MixedProfile(rate);
    }
    overrides.fault_retry.max_attempts =
        static_cast<int32_t>(flags.GetInt("max_attempts"));
    overrides.fault_seed = static_cast<uint64_t>(flags.GetInt("fault_seed"));
    auto engine = MakeEngine(SystemKind::kPensieve, cost_model, overrides);
    const ServingSummary s = RunServingExperiment(engine.get(), trace);

    const LinkFaultStats& lf = s.engine_stats.link_faults;
    const LinkFaultStats& sf = s.engine_stats.ssd_link_faults;
    std::printf(
        "%-10.3g %9ld %10.3f %12.1f %9ld %8ld %8ld %7ld %9ld %8ld %7ld %9ld "
        "%11ld %9.3f\n",
        rate, static_cast<long>(s.completed_requests), s.throughput_rps,
        s.p99_normalized_latency * 1e3, static_cast<long>(lf.InjectedFaults()),
        static_cast<long>(lf.retries), static_cast<long>(lf.recovered_faults),
        static_cast<long>(lf.unrecovered_faults),
        static_cast<long>(sf.InjectedFaults()),
        static_cast<long>(sf.recovered_faults),
        static_cast<long>(sf.unrecovered_faults),
        static_cast<long>(s.engine_stats.fault_degraded_admissions),
        static_cast<long>(s.engine_stats.fault_recompute_tokens),
        lf.retry_backoff_seconds + sf.retry_backoff_seconds);

    // Invariant: every retryable fault is accounted recovered or
    // unrecovered — independently on each armed link.
    const struct {
      const char* link;
      const LinkFaultStats& f;
    } links[] = {{"pcie", lf}, {"ssd", sf}};
    for (const auto& [link, f] : links) {
      const int64_t retryable =
          f.injected_timeouts + f.injected_partials + f.injected_corruptions;
      if (retryable != f.recovered_faults + f.unrecovered_faults) {
        std::fprintf(stderr,
                     "FAIL rate=%g link=%s: fault accounting leak (%ld "
                     "retryable != %ld recovered + %ld unrecovered)\n",
                     rate, link, static_cast<long>(retryable),
                     static_cast<long>(f.recovered_faults),
                     static_cast<long>(f.unrecovered_faults));
        ++failures;
      }
    }
    // Invariant: faults degrade latency, never drop requests.
    if (baseline_completed < 0) {
      baseline_completed = s.completed_requests;
    } else if (s.completed_requests != baseline_completed) {
      std::fprintf(stderr,
                   "FAIL rate=%g: completed %ld != fault-free %ld (request "
                   "dropped by a KV fault)\n",
                   rate, static_cast<long>(s.completed_requests),
                   static_cast<long>(baseline_completed));
      ++failures;
    }
  }
  if (failures > 0) {
    return 1;
  }
  std::printf("\ninvariants held: fault accounting balanced on both links, "
              "no requests dropped at any rate\n");
  return 0;
}

}  // namespace
}  // namespace pensieve

int main(int argc, char** argv) { return pensieve::Run(argc, argv); }

// Figure 12: multi-token attention kernel over non-contiguous KV cache,
// batch = 32 requests, query size = 8, context size swept.
//
// Compared implementations (all real, validated against the same reference
// in tests/attention_kernel_test.cc):
//   * ideal          — fused attention over *contiguous* K/V (the baseline
//                      existing kernels support).
//   * pensieve       — Pensieve's multi-token paged attention over
//                      non-contiguous blocks.
//   * copyout        — straw-man 1: gather the paged context into contiguous
//                      buffers, then run the ideal kernel.
//   * multiround     — straw-man 2: one single-token PagedAttention
//                      invocation per prompt token.
//
// The google-benchmark section reports wall-clock CPU numbers for the real
// kernels: it demonstrates CopyOut's materialization overhead directly. The
// second section reports the A100 cost-model latencies, which capture the
// GPU-specific effects (multiround forfeits the query-token parallel
// dimension and re-streams the context per round), matching the paper's
// figure shape: both straw-men add significant overhead, Pensieve matches
// the ideal contiguous kernel.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <vector>

#include "src/kernels/attention.h"
#include "src/kvcache/kv_pool.h"
#include "src/model/model_config.h"
#include "src/sim/cost_model.h"
#include "src/sim/hardware.h"
#include "src/tensor/ops.h"

namespace pensieve {
namespace {

constexpr int64_t kBatch = 32;
constexpr int64_t kQuery = 8;
constexpr int64_t kNumHeads = 4;
constexpr int64_t kNumKvHeads = 2;
constexpr int64_t kHeadDim = 16;
constexpr int64_t kBlockSize = 32;

struct Workspace {
  explicit Workspace(int64_t context)
      : context_len(context),
        blocks_per_request((context + kBlockSize - 1) / kBlockSize),
        pool(blocks_per_request * kBatch, kBlockSize, 1, kNumKvHeads, kHeadDim),
        query({kBatch * kQuery, kNumHeads, kHeadDim}),
        out({kBatch * kQuery, kNumHeads, kHeadDim}) {
    FillNormal(query, 3, 1.0f);
    Tensor kv({kNumKvHeads, kHeadDim});
    FillNormal(kv, 4, 1.0f);
    tables.resize(static_cast<size_t>(kBatch));
    for (int64_t r = 0; r < kBatch; ++r) {
      // Interleaved placement => every request's context is non-contiguous.
      for (int64_t b = 0; b < blocks_per_request; ++b) {
        tables[static_cast<size_t>(r)].push_back(
            static_cast<BlockId>(b * kBatch + r));
      }
      for (int64_t pos = 0; pos < context; ++pos) {
        pool.WriteToken(tables[static_cast<size_t>(r)]
                              [static_cast<size_t>(pos / kBlockSize)],
                        0, pos % kBlockSize, kv.data(), kv.data());
      }
      subs.push_back({r * kQuery, kQuery, context, &tables[static_cast<size_t>(r)]});
    }
    // Dense copies for the "ideal" contiguous baseline.
    for (int64_t r = 0; r < kBatch; ++r) {
      Tensor keys({context, kNumKvHeads, kHeadDim});
      Tensor values({context, kNumKvHeads, kHeadDim});
      for (int64_t pos = 0; pos < context; ++pos) {
        const BlockId block = tables[static_cast<size_t>(r)]
                                    [static_cast<size_t>(pos / kBlockSize)];
        const float* k = pool.TokenData(block, 0, 0, pos % kBlockSize);
        const float* v = pool.TokenData(block, 0, 1, pos % kBlockSize);
        std::copy(k, k + kNumKvHeads * kHeadDim,
                  keys.data() + pos * kNumKvHeads * kHeadDim);
        std::copy(v, v + kNumKvHeads * kHeadDim,
                  values.data() + pos * kNumKvHeads * kHeadDim);
      }
      dense_keys.push_back(std::move(keys));
      dense_values.push_back(std::move(values));
    }
    for (int64_t r = 0; r < kBatch; ++r) {
      dense.push_back({r * kQuery, kQuery, &dense_keys[static_cast<size_t>(r)],
                       &dense_values[static_cast<size_t>(r)]});
    }
  }

  int64_t context_len;
  int64_t blocks_per_request;
  KvPool pool;
  Tensor query;
  Tensor out;
  std::vector<std::vector<BlockId>> tables;
  std::vector<AttentionSubRequest> subs;
  std::vector<Tensor> dense_keys;
  std::vector<Tensor> dense_values;
  std::vector<ContiguousAttentionRequest> dense;
};

Workspace& SharedWorkspace(int64_t context) {
  static std::vector<std::unique_ptr<Workspace>> cache;
  for (auto& ws : cache) {
    if (ws->context_len == context) {
      return *ws;
    }
  }
  cache.push_back(std::make_unique<Workspace>(context));
  return *cache.back();
}

void BM_IdealContiguous(benchmark::State& state) {
  Workspace& ws = SharedWorkspace(state.range(0));
  for (auto _ : state) {
    ContiguousAttention(ws.query, ws.dense, 0.25f, &ws.out);
    benchmark::DoNotOptimize(ws.out.data());
  }
}

void BM_PensieveMultiToken(benchmark::State& state) {
  Workspace& ws = SharedWorkspace(state.range(0));
  for (auto _ : state) {
    MultiTokenPagedAttention(ws.pool, 0, ws.query, ws.subs, 0.25f, &ws.out);
    benchmark::DoNotOptimize(ws.out.data());
  }
}

void BM_CopyOutAttention(benchmark::State& state) {
  Workspace& ws = SharedWorkspace(state.range(0));
  for (auto _ : state) {
    CopyOutPagedAttention(ws.pool, 0, ws.query, ws.subs, 0.25f, &ws.out);
    benchmark::DoNotOptimize(ws.out.data());
  }
}

void BM_MultiRoundPaged(benchmark::State& state) {
  Workspace& ws = SharedWorkspace(state.range(0));
  for (auto _ : state) {
    MultiRoundPagedAttention(ws.pool, 0, ws.query, ws.subs, 0.25f, &ws.out);
    benchmark::DoNotOptimize(ws.out.data());
  }
}

void ContextArgs(benchmark::internal::Benchmark* bench) {
  for (int64_t ctx : {128, 512, 1024, 2048, 4096}) {
    bench->Arg(ctx);
  }
}

BENCHMARK(BM_IdealContiguous)->Apply(ContextArgs)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PensieveMultiToken)->Apply(ContextArgs)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CopyOutAttention)->Apply(ContextArgs)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MultiRoundPaged)->Apply(ContextArgs)->Unit(benchmark::kMillisecond);

// GPU cost-model projection of the same comparison (the paper's actual
// figure is a GPU measurement; these terms model the GPU-side effects).
void PrintGpuModelTable() {
  const GpuCostModel model(Opt13BConfig(), A100Spec(1));
  const HardwareSpec& hw = model.hardware();
  std::printf("\n# Figure 12 (A100 model, OPT-13B geometry, batch=32, query=8): "
              "attention latency in ms\n");
  std::printf("%-10s %-10s %-10s %-10s %-12s\n", "context", "ideal", "pensieve",
              "copyout", "multiround");
  for (int64_t ctx = 32; ctx <= 8192; ctx *= 2) {
    const double ideal = kBatch * model.AttentionTime(kQuery, ctx);
    // Pensieve offloads auxiliary index computation to the CPU and shares it
    // across layers (§6.4), saving a sliver of the per-launch overhead.
    const double pensieve_t = ideal;
    // CopyOut first materializes the context into fresh contiguous memory:
    // read + write of the whole KV region through HBM.
    const double copy_bytes =
        2.0 * static_cast<double>(model.KvBytesPerToken() / model.model().num_layers) *
        static_cast<double>(ctx) * kBatch;
    const double copyout = ideal + copy_bytes / hw.hbm_bandwidth *
                                       static_cast<double>(model.model().num_layers);
    // Multi-round re-streams the context once per prompt token and pays a
    // kernel launch per round.
    double multiround = 0.0;
    for (int64_t round = 0; round < kQuery; ++round) {
      multiround +=
          kBatch * model.AttentionTime(1, ctx - kQuery + round + 1) + hw.layer_overhead;
    }
    std::printf("%-10ld %-10.3f %-10.3f %-10.3f %-12.3f\n", ctx, ideal * 1e3,
                pensieve_t * 1e3, copyout * 1e3, multiround * 1e3);
  }
  std::printf("\nShape check: CopyOut adds cost proportional to the context "
              "size; Multi-round grows with\nprompt length by re-streaming the "
              "context per token; Pensieve matches the ideal kernel.\n");
}

}  // namespace
}  // namespace pensieve

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  pensieve::PrintGpuModelTable();
  return 0;
}

// Figure 12: multi-token attention kernel over non-contiguous KV cache,
// batch = 32 requests, query size = 8, context size swept.
//
// Compared implementations (all real, validated against the same reference
// in tests/attention_kernel_test.cc):
//   * ideal          — fused attention over *contiguous* K/V (the baseline
//                      existing kernels support).
//   * pensieve       — Pensieve's multi-token paged attention over
//                      non-contiguous blocks.
//   * copyout        — straw-man 1: gather the paged context into contiguous
//                      buffers, then run the ideal kernel.
//   * multiround     — straw-man 2: one single-token PagedAttention
//                      invocation per prompt token.
//
// The google-benchmark section reports wall-clock CPU numbers for the real
// kernels: it demonstrates CopyOut's materialization overhead directly. The
// second section reports the A100 cost-model latencies, which capture the
// GPU-specific effects (multiround forfeits the query-token parallel
// dimension and re-streams the context per round), matching the paper's
// figure shape: both straw-men add significant overhead, Pensieve matches
// the ideal contiguous kernel.

// A third mode, --scaling, measures wall-clock thread scaling of the real
// CPU kernels (and a transformer-GEMM proxy) on the global thread pool and
// writes machine-readable JSON (default BENCH_kernel_scaling.json) with
// tokens/s per kernel per thread count, verifying along the way that every
// thread count produces bit-identical outputs.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_serving_common.h"
#include "src/common/thread_pool.h"
#include "src/kernels/attention.h"
#include "src/kvcache/kv_pool.h"
#include "src/model/model_config.h"
#include "src/sim/cost_model.h"
#include "src/sim/hardware.h"
#include "src/tensor/ops.h"

namespace pensieve {
namespace {

constexpr int64_t kBatch = 32;
constexpr int64_t kQuery = 8;
constexpr int64_t kNumHeads = 4;
constexpr int64_t kNumKvHeads = 2;
constexpr int64_t kHeadDim = 16;
constexpr int64_t kBlockSize = 32;

struct Workspace {
  explicit Workspace(int64_t context)
      : context_len(context),
        blocks_per_request((context + kBlockSize - 1) / kBlockSize),
        pool(blocks_per_request * kBatch, kBlockSize, 1, kNumKvHeads, kHeadDim),
        query({kBatch * kQuery, kNumHeads, kHeadDim}),
        out({kBatch * kQuery, kNumHeads, kHeadDim}) {
    FillNormal(query, 3, 1.0f);
    Tensor kv({kNumKvHeads, kHeadDim});
    FillNormal(kv, 4, 1.0f);
    tables.resize(static_cast<size_t>(kBatch));
    for (int64_t r = 0; r < kBatch; ++r) {
      // Interleaved placement => every request's context is non-contiguous.
      for (int64_t b = 0; b < blocks_per_request; ++b) {
        tables[static_cast<size_t>(r)].push_back(
            static_cast<BlockId>(b * kBatch + r));
      }
      for (int64_t pos = 0; pos < context; ++pos) {
        pool.WriteToken(tables[static_cast<size_t>(r)]
                              [static_cast<size_t>(pos / kBlockSize)],
                        0, pos % kBlockSize, kv.data(), kv.data());
      }
      subs.push_back({r * kQuery, kQuery, context, &tables[static_cast<size_t>(r)]});
    }
    // Dense copies for the "ideal" contiguous baseline.
    for (int64_t r = 0; r < kBatch; ++r) {
      Tensor keys({context, kNumKvHeads, kHeadDim});
      Tensor values({context, kNumKvHeads, kHeadDim});
      for (int64_t pos = 0; pos < context; ++pos) {
        const BlockId block = tables[static_cast<size_t>(r)]
                                    [static_cast<size_t>(pos / kBlockSize)];
        const float* k = pool.TokenData(block, 0, 0, pos % kBlockSize);
        const float* v = pool.TokenData(block, 0, 1, pos % kBlockSize);
        std::copy(k, k + kNumKvHeads * kHeadDim,
                  keys.data() + pos * kNumKvHeads * kHeadDim);
        std::copy(v, v + kNumKvHeads * kHeadDim,
                  values.data() + pos * kNumKvHeads * kHeadDim);
      }
      dense_keys.push_back(std::move(keys));
      dense_values.push_back(std::move(values));
    }
    for (int64_t r = 0; r < kBatch; ++r) {
      dense.push_back({r * kQuery, kQuery, &dense_keys[static_cast<size_t>(r)],
                       &dense_values[static_cast<size_t>(r)]});
    }
  }

  int64_t context_len;
  int64_t blocks_per_request;
  KvPool pool;
  Tensor query;
  Tensor out;
  std::vector<std::vector<BlockId>> tables;
  std::vector<AttentionSubRequest> subs;
  std::vector<Tensor> dense_keys;
  std::vector<Tensor> dense_values;
  std::vector<ContiguousAttentionRequest> dense;
};

Workspace& SharedWorkspace(int64_t context) {
  static std::vector<std::unique_ptr<Workspace>> cache;
  for (auto& ws : cache) {
    if (ws->context_len == context) {
      return *ws;
    }
  }
  cache.push_back(std::make_unique<Workspace>(context));
  return *cache.back();
}

void BM_IdealContiguous(benchmark::State& state) {
  Workspace& ws = SharedWorkspace(state.range(0));
  for (auto _ : state) {
    ContiguousAttention(ws.query, ws.dense, 0.25f, &ws.out);
    benchmark::DoNotOptimize(ws.out.data());
  }
}

void BM_PensieveMultiToken(benchmark::State& state) {
  Workspace& ws = SharedWorkspace(state.range(0));
  for (auto _ : state) {
    MultiTokenPagedAttention(ws.pool, 0, ws.query, ws.subs, 0.25f, &ws.out);
    benchmark::DoNotOptimize(ws.out.data());
  }
}

void BM_CopyOutAttention(benchmark::State& state) {
  Workspace& ws = SharedWorkspace(state.range(0));
  for (auto _ : state) {
    CopyOutPagedAttention(ws.pool, 0, ws.query, ws.subs, 0.25f, &ws.out);
    benchmark::DoNotOptimize(ws.out.data());
  }
}

void BM_MultiRoundPaged(benchmark::State& state) {
  Workspace& ws = SharedWorkspace(state.range(0));
  for (auto _ : state) {
    MultiRoundPagedAttention(ws.pool, 0, ws.query, ws.subs, 0.25f, &ws.out);
    benchmark::DoNotOptimize(ws.out.data());
  }
}

void ContextArgs(benchmark::internal::Benchmark* bench) {
  for (int64_t ctx : {128, 512, 1024, 2048, 4096}) {
    bench->Arg(ctx);
  }
}

BENCHMARK(BM_IdealContiguous)->Apply(ContextArgs)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PensieveMultiToken)->Apply(ContextArgs)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CopyOutAttention)->Apply(ContextArgs)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MultiRoundPaged)->Apply(ContextArgs)->Unit(benchmark::kMillisecond);

// GPU cost-model projection of the same comparison (the paper's actual
// figure is a GPU measurement; these terms model the GPU-side effects).
void PrintGpuModelTable() {
  const GpuCostModel model(Opt13BConfig(), A100Spec(1));
  const HardwareSpec& hw = model.hardware();
  std::printf("\n# Figure 12 (A100 model, OPT-13B geometry, batch=32, query=8): "
              "attention latency in ms\n");
  std::printf("%-10s %-10s %-10s %-10s %-12s\n", "context", "ideal", "pensieve",
              "copyout", "multiround");
  for (int64_t ctx = 32; ctx <= 8192; ctx *= 2) {
    const double ideal = kBatch * model.AttentionTime(kQuery, ctx);
    // Pensieve offloads auxiliary index computation to the CPU and shares it
    // across layers (§6.4), saving a sliver of the per-launch overhead.
    const double pensieve_t = ideal;
    // CopyOut first materializes the context into fresh contiguous memory:
    // read + write of the whole KV region through HBM.
    const double copy_bytes =
        2.0 * static_cast<double>(model.KvBytesPerToken() / model.model().num_layers) *
        static_cast<double>(ctx) * kBatch;
    const double copyout = ideal + copy_bytes / hw.hbm_bandwidth *
                                       static_cast<double>(model.model().num_layers);
    // Multi-round re-streams the context once per prompt token and pays a
    // kernel launch per round.
    double multiround = 0.0;
    for (int64_t round = 0; round < kQuery; ++round) {
      multiround +=
          kBatch * model.AttentionTime(1, ctx - kQuery + round + 1) + hw.layer_overhead;
    }
    std::printf("%-10ld %-10.3f %-10.3f %-10.3f %-12.3f\n", ctx, ideal * 1e3,
                pensieve_t * 1e3, copyout * 1e3, multiround * 1e3);
  }
  std::printf("\nShape check: CopyOut adds cost proportional to the context "
              "size; Multi-round grows with\nprompt length by re-streaming the "
              "context per token; Pensieve matches the ideal kernel.\n");
}

// ---------------------------------------------------------------------------
// Thread-scaling mode (--scaling): wall-clock tokens/s per kernel per thread
// count, emitted as JSON so the perf trajectory is tracked across PRs.
// ---------------------------------------------------------------------------

struct ScalingOptions {
  bool enabled = false;
  int64_t context = 2048;
  int64_t iters = 3;
  std::string json_path = "BENCH_kernel_scaling.json";
  std::vector<int> threads = {1, 2, 4, 8};
};

// Consumes the --scaling* flags so google-benchmark never sees them.
bool ConsumeScalingFlags(int* argc, char** argv, ScalingOptions* opts) {
  int write = 1;
  for (int read = 1; read < *argc; ++read) {
    const std::string arg = argv[read];
    if (arg == "--scaling") {
      opts->enabled = true;
    } else if (arg.rfind("--scaling_context=", 0) == 0) {
      opts->context = std::atoll(arg.c_str() + 18);
    } else if (arg.rfind("--scaling_iters=", 0) == 0) {
      opts->iters = std::atoll(arg.c_str() + 16);
    } else if (arg.rfind("--scaling_json=", 0) == 0) {
      opts->json_path = arg.substr(15);
    } else if (arg.rfind("--scaling_threads=", 0) == 0) {
      opts->threads.clear();
      const std::string list = arg.substr(18);
      size_t pos = 0;
      while (pos < list.size()) {
        size_t comma = list.find(',', pos);
        if (comma == std::string::npos) {
          comma = list.size();
        }
        const int t = std::atoi(list.substr(pos, comma - pos).c_str());
        if (t < 1) {
          return false;
        }
        opts->threads.push_back(t);
        pos = comma + 1;
      }
      if (opts->threads.empty()) {
        return false;
      }
    } else {
      argv[write++] = argv[read];
      continue;
    }
  }
  *argc = write;
  return opts->context >= 16 && opts->iters >= 1;
}

struct ScalingResult {
  std::string kernel;
  int threads;
  double mean_seconds;
  double tokens_per_s;
};

int RunScalingMode(const ScalingOptions& opts) {
  Workspace& ws = SharedWorkspace(opts.context);
  // The GEMM proxy mirrors a transformer projection: weights stored
  // [out, in], activations [tokens, in].
  const int64_t gemm_tokens = 256;
  const int64_t gemm_in = 512;
  const int64_t gemm_out = 1024;
  Tensor gemm_a({gemm_tokens, gemm_in});
  Tensor gemm_w({gemm_out, gemm_in});
  FillNormal(gemm_a, 11, 1.0f);
  FillNormal(gemm_w, 12, 1.0f);

  struct KernelCase {
    const char* name;
    int64_t tokens_per_run;
  };
  const std::vector<KernelCase> cases = {
      {"pensieve_multi_token", kBatch * kQuery},
      {"ideal_contiguous", kBatch * kQuery},
      {"copyout", kBatch * kQuery},
      {"multiround", kBatch * kQuery},
      {"gemm_proj_256x512x1024", gemm_tokens},
  };
  auto run_kernel = [&](const std::string& name) -> const Tensor* {
    if (name == "pensieve_multi_token") {
      MultiTokenPagedAttention(ws.pool, 0, ws.query, ws.subs, 0.25f, &ws.out);
      return &ws.out;
    }
    if (name == "ideal_contiguous") {
      ContiguousAttention(ws.query, ws.dense, 0.25f, &ws.out);
      return &ws.out;
    }
    if (name == "copyout") {
      CopyOutPagedAttention(ws.pool, 0, ws.query, ws.subs, 0.25f, &ws.out);
      return &ws.out;
    }
    if (name == "multiround") {
      MultiRoundPagedAttention(ws.pool, 0, ws.query, ws.subs, 0.25f, &ws.out);
      return &ws.out;
    }
    static Tensor gemm_c;
    gemm_c = MatMulTransposedB(gemm_a, gemm_w);
    return &gemm_c;
  };

  std::printf("# kernel thread scaling: context=%ld batch=%ld query=%ld iters=%ld\n",
              static_cast<long>(opts.context), static_cast<long>(kBatch),
              static_cast<long>(kQuery), static_cast<long>(opts.iters));
  std::printf("%-26s %-8s %-14s %-14s %-10s\n", "kernel", "threads", "mean_s",
              "tokens_per_s", "speedup");
  std::vector<ScalingResult> results;
  std::vector<std::vector<float>> reference(cases.size());
  for (const int t : opts.threads) {
    ThreadPool::SetGlobalThreads(t);
    for (size_t c = 0; c < cases.size(); ++c) {
      run_kernel(cases[c].name);  // warm-up (also the determinism sample)
      const Tensor* warm = run_kernel(cases[c].name);
      if (reference[c].empty()) {
        reference[c].assign(warm->data(), warm->data() + warm->numel());
      } else if (std::memcmp(reference[c].data(), warm->data(),
                             static_cast<size_t>(warm->numel()) * sizeof(float)) != 0) {
        std::fprintf(stderr,
                     "FATAL: %s output at %d thread(s) differs from %d-thread "
                     "reference — determinism contract violated\n",
                     cases[c].name, t, opts.threads.front());
        return 1;
      }
      const auto start = std::chrono::steady_clock::now();
      for (int64_t i = 0; i < opts.iters; ++i) {
        benchmark::DoNotOptimize(run_kernel(cases[c].name));
      }
      const double total =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
              .count();
      ScalingResult r;
      r.kernel = cases[c].name;
      r.threads = t;
      r.mean_seconds = total / static_cast<double>(opts.iters);
      r.tokens_per_s =
          static_cast<double>(cases[c].tokens_per_run) / r.mean_seconds;
      double speedup = 1.0;
      for (const ScalingResult& base : results) {
        if (base.kernel == r.kernel && base.threads == opts.threads.front()) {
          speedup = base.mean_seconds / r.mean_seconds;
        }
      }
      std::printf("%-26s %-8d %-14.6f %-14.1f %-10.2f\n", r.kernel.c_str(), t,
                  r.mean_seconds, r.tokens_per_s, speedup);
      results.push_back(r);
    }
  }
  ThreadPool::SetGlobalThreads(0);

  std::FILE* f = std::fopen(opts.json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", opts.json_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "%s  \"batch\": %ld,\n"
               "  \"query\": %ld,\n  \"context\": %ld,\n  \"iters\": %ld,\n"
               "  \"results\": [\n",
               BenchJsonHeader("kernel_scaling").c_str(), static_cast<long>(kBatch),
               static_cast<long>(kQuery), static_cast<long>(opts.context),
               static_cast<long>(opts.iters));
  for (size_t i = 0; i < results.size(); ++i) {
    const ScalingResult& r = results[i];
    double base_seconds = r.mean_seconds;
    for (const ScalingResult& base : results) {
      if (base.kernel == r.kernel && base.threads == opts.threads.front()) {
        base_seconds = base.mean_seconds;
      }
    }
    std::fprintf(f,
                 "    {\"kernel\": \"%s\", \"threads\": %d, \"mean_seconds\": "
                 "%.9f, \"tokens_per_s\": %.3f, \"speedup_vs_%dt\": %.4f}%s\n",
                 r.kernel.c_str(), r.threads, r.mean_seconds, r.tokens_per_s,
                 opts.threads.front(), base_seconds / r.mean_seconds,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", opts.json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace pensieve

int main(int argc, char** argv) {
  pensieve::ScalingOptions scaling;
  if (!pensieve::ConsumeScalingFlags(&argc, argv, &scaling)) {
    std::fprintf(stderr,
                 "bad --scaling flags (need --scaling_context>=16, "
                 "--scaling_iters>=1, --scaling_threads=t1[,t2...])\n");
    return 2;
  }
  pensieve::ConsumeThreadsFlag(&argc, argv);
  if (scaling.enabled) {
    return pensieve::RunScalingMode(scaling);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  pensieve::PrintGpuModelTable();
  return 0;
}

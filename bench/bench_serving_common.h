// Shared helpers for the serving-figure benchmark binaries.

#ifndef PENSIEVE_BENCH_BENCH_SERVING_COMMON_H_
#define PENSIEVE_BENCH_BENCH_SERVING_COMMON_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "src/common/thread_pool.h"
#include "src/core/experiment.h"
#include "src/tensor/packed_matrix.h"

namespace pensieve {

// Detected host core count for BENCH_*.json headers. Containers can make
// std::thread::hardware_concurrency() report 1 (or 0) while the worker pool
// is sized wider via PENSIEVE_THREADS — the old bench_gemm header recorded
// that bogus 1 next to "threads": 8 entries. Take the max of the visible-CPU
// count and the pool default so the header always covers the sweep that ran.
inline int BenchDetectedCores() {
  int cores = static_cast<int>(std::thread::hardware_concurrency());
#if defined(_SC_NPROCESSORS_ONLN)
  cores = std::max(cores, static_cast<int>(sysconf(_SC_NPROCESSORS_ONLN)));
#endif
  return std::max(cores, ThreadPool::DefaultThreads());
}

// Opening fields shared by every BENCH_*.json writer: bench name, the
// detected core count, and the GEMM ISA this process dispatched to (avx2 or
// sse) — what a reader needs to interpret thread counts and absolute
// per-call times across hosts. Callers append their own fields after it.
inline std::string BenchJsonHeader(const char* bench) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{\n  \"bench\": \"%s\",\n  \"nproc\": %d,\n  \"isa\": \"%s\",\n",
                bench, BenchDetectedCores(), GemmIsaName());
  return std::string(buf);
}

// Number of conversations per experiment; override with PENSIEVE_BENCH_CONVS
// for quicker smoke runs.
inline int64_t BenchConversations(int64_t default_value = 300) {
  const char* env = std::getenv("PENSIEVE_BENCH_CONVS");
  if (env != nullptr) {
    return std::strtoll(env, nullptr, 10);
  }
  return default_value;
}

// Uniform --threads plumbing for every bench binary: consumes
// `--threads=N` / `--threads N` from argv (so binaries with their own flag
// handling never see it) and sizes the global pool. N <= 0 or an absent
// flag keeps the default (PENSIEVE_THREADS env var, else hardware
// concurrency).
inline void ConsumeThreadsFlag(int* argc, char** argv) {
  int threads = 0;
  int write = 1;
  for (int read = 1; read < *argc; ++read) {
    const char* arg = argv[read];
    if (std::strncmp(arg, "--threads=", 10) == 0) {
      threads = std::atoi(arg + 10);
      continue;
    }
    if (std::strcmp(arg, "--threads") == 0 && read + 1 < *argc) {
      threads = std::atoi(argv[read + 1]);
      ++read;
      continue;
    }
    argv[write++] = argv[read];
  }
  *argc = write;
  ThreadPool::SetGlobalThreads(threads);
}

// Consumes `--smoke` from argv; returns true when present. Benches use it
// to shrink to CI size and turn on their self-checks (a violated invariant
// exits nonzero, which makes the smoke ctest entry a real test).
inline bool ConsumeSmokeFlag(int* argc, char** argv) {
  bool smoke = false;
  int write = 1;
  for (int read = 1; read < *argc; ++read) {
    if (std::strcmp(argv[read], "--smoke") == 0) {
      smoke = true;
      continue;
    }
    argv[write++] = argv[read];
  }
  *argc = write;
  return smoke;
}

inline void RunSystemsSweep(const std::string& title, const GpuCostModel& cost_model,
                            const DatasetProfile& profile,
                            const std::vector<SystemKind>& systems,
                            const std::vector<double>& rates,
                            const SweepOptions& base_options) {
  std::printf("==== %s ====\n", title.c_str());
  for (SystemKind kind : systems) {
    std::vector<SweepPoint> points =
        RateSweep(kind, cost_model, profile, rates, base_options);
    PrintSweep(SystemKindName(kind), points);
  }
}

}  // namespace pensieve

#endif  // PENSIEVE_BENCH_BENCH_SERVING_COMMON_H_

// Shared helpers for the serving-figure benchmark binaries.

#ifndef PENSIEVE_BENCH_BENCH_SERVING_COMMON_H_
#define PENSIEVE_BENCH_BENCH_SERVING_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/core/experiment.h"

namespace pensieve {

// Number of conversations per experiment; override with PENSIEVE_BENCH_CONVS
// for quicker smoke runs.
inline int64_t BenchConversations(int64_t default_value = 300) {
  const char* env = std::getenv("PENSIEVE_BENCH_CONVS");
  if (env != nullptr) {
    return std::strtoll(env, nullptr, 10);
  }
  return default_value;
}

inline void RunSystemsSweep(const std::string& title, const GpuCostModel& cost_model,
                            const DatasetProfile& profile,
                            const std::vector<SystemKind>& systems,
                            const std::vector<double>& rates,
                            const SweepOptions& base_options) {
  std::printf("==== %s ====\n", title.c_str());
  for (SystemKind kind : systems) {
    std::vector<SweepPoint> points =
        RateSweep(kind, cost_model, profile, rates, base_options);
    PrintSweep(SystemKindName(kind), points);
  }
}

}  // namespace pensieve

#endif  // PENSIEVE_BENCH_BENCH_SERVING_COMMON_H_

// Shared helpers for the serving-figure benchmark binaries.

#ifndef PENSIEVE_BENCH_BENCH_SERVING_COMMON_H_
#define PENSIEVE_BENCH_BENCH_SERVING_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/core/experiment.h"

namespace pensieve {

// Number of conversations per experiment; override with PENSIEVE_BENCH_CONVS
// for quicker smoke runs.
inline int64_t BenchConversations(int64_t default_value = 300) {
  const char* env = std::getenv("PENSIEVE_BENCH_CONVS");
  if (env != nullptr) {
    return std::strtoll(env, nullptr, 10);
  }
  return default_value;
}

// Uniform --threads plumbing for every bench binary: consumes
// `--threads=N` / `--threads N` from argv (so binaries with their own flag
// handling never see it) and sizes the global pool. N <= 0 or an absent
// flag keeps the default (PENSIEVE_THREADS env var, else hardware
// concurrency).
inline void ConsumeThreadsFlag(int* argc, char** argv) {
  int threads = 0;
  int write = 1;
  for (int read = 1; read < *argc; ++read) {
    const char* arg = argv[read];
    if (std::strncmp(arg, "--threads=", 10) == 0) {
      threads = std::atoi(arg + 10);
      continue;
    }
    if (std::strcmp(arg, "--threads") == 0 && read + 1 < *argc) {
      threads = std::atoi(argv[read + 1]);
      ++read;
      continue;
    }
    argv[write++] = argv[read];
  }
  *argc = write;
  ThreadPool::SetGlobalThreads(threads);
}

inline void RunSystemsSweep(const std::string& title, const GpuCostModel& cost_model,
                            const DatasetProfile& profile,
                            const std::vector<SystemKind>& systems,
                            const std::vector<double>& rates,
                            const SweepOptions& base_options) {
  std::printf("==== %s ====\n", title.c_str());
  for (SystemKind kind : systems) {
    std::vector<SweepPoint> points =
        RateSweep(kind, cost_model, profile, rates, base_options);
    PrintSweep(SystemKindName(kind), points);
  }
}

}  // namespace pensieve

#endif  // PENSIEVE_BENCH_BENCH_SERVING_COMMON_H_

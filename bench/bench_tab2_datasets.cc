// Table 2: dataset statistics of the synthesized ShareGPT and UltraChat
// workloads — conversations, mean turns, mean request input/output lengths —
// compared against the paper's reported numbers.

#include <cstdio>

#include "bench_serving_common.h"
#include "src/workload/dataset.h"

namespace pensieve {
namespace {

void PrintDataset(const DatasetProfile& profile, int64_t num_conversations,
                  double paper_turns, double paper_in, double paper_out) {
  ConversationGenerator gen(profile, 2024);
  double turns = 0.0;
  double input = 0.0;
  double output = 0.0;
  int64_t requests = 0;
  int64_t over_cap = 0;
  for (int64_t i = 0; i < num_conversations; ++i) {
    ConversationSpec spec = gen.Next();
    turns += static_cast<double>(spec.turns.size());
    if (spec.TotalTokens() > profile.max_context) {
      ++over_cap;
    }
    for (const TurnSpec& t : spec.turns) {
      input += static_cast<double>(t.input_len);
      output += static_cast<double>(t.output_len);
      ++requests;
    }
  }
  std::printf("%-12s %-12ld %-18.2f (%.2f)   %-16.2f (%.2f)   %-16.2f (%.2f)\n",
              profile.name.c_str(), num_conversations,
              turns / static_cast<double>(num_conversations), paper_turns,
              input / static_cast<double>(requests), paper_in,
              output / static_cast<double>(requests), paper_out);
  (void)over_cap;
}

void RunTable2() {
  std::printf("# Table 2: synthesized dataset statistics (paper values in "
              "parentheses)\n");
  std::printf("%-12s %-12s %-28s %-26s %-26s\n", "dataset", "#convs",
              "mean_turns (paper)", "mean_input (paper)", "mean_output (paper)");
  PrintDataset(ShareGptProfile(), 48159, 5.56, 37.77, 204.58);
  PrintDataset(UltraChatProfile(), 100000, 3.86, 51.78, 257.81);
  std::printf("\n(UltraChat sampled at 100K of the paper's 1.47M conversations "
              "for runtime; statistics are stable.)\n");
}

}  // namespace
}  // namespace pensieve

int main(int argc, char** argv) {
  pensieve::ConsumeThreadsFlag(&argc, argv);
  pensieve::RunTable2();
  return 0;
}
